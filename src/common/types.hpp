// Fundamental vocabulary types shared by every dagmx subsystem.
#pragma once

#include <cstdint>

namespace dmx {

/// Identifier of a node in the system. The paper numbers nodes 1..N and
/// uses 0 as the nil pointer value for NEXT/FOLLOW, so we keep that
/// convention: valid ids are >= 1 and kNilNode (0) means "no node".
using NodeId = std::int32_t;

/// The nil node id (the paper's "0" value for NEXT and FOLLOW).
inline constexpr NodeId kNilNode = 0;

/// Virtual time in the discrete-event simulator, in abstract ticks.
/// Benches use a fixed per-hop latency so tick deltas convert directly to
/// message-hop counts (the unit Chapter 6 reports results in).
using Tick = std::int64_t;

}  // namespace dmx
