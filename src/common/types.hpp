// Fundamental vocabulary types shared by every dagmx subsystem.
#pragma once

#include <cstdint>

namespace dmx {

/// Identifier of a node in the system. The paper numbers nodes 1..N and
/// uses 0 as the nil pointer value for NEXT/FOLLOW, so we keep that
/// convention: valid ids are >= 1 and kNilNode (0) means "no node".
using NodeId = std::int32_t;

/// The nil node id (the paper's "0" value for NEXT and FOLLOW).
inline constexpr NodeId kNilNode = 0;

/// Identifier of a named resource served by a multi-resource LockSpace
/// (src/service). Ids are dense, 0-based, assigned in open() order; the
/// single-resource substrates implicitly use resource 0.
using ResourceId = std::int32_t;

/// "No resource" value for directory lookups of unknown names.
inline constexpr ResourceId kNilResource = -1;

/// Virtual time in the discrete-event simulator, in abstract ticks.
/// Benches use a fixed per-hop latency so tick deltas convert directly to
/// message-hop counts (the unit Chapter 6 reports results in).
using Tick = std::int64_t;

/// Per-resource configuration generation. Epoch 0 is the initial
/// membership; every crash-recovery structure repair (token regeneration,
/// DAG/tree reinitialization among survivors) bumps it by one. Messages
/// are stamped with their sender's epoch so a stale token — lost with a
/// crashed holder and later found when that node recovers — is fenced at
/// delivery instead of ever being granted.
using Epoch = std::uint32_t;

}  // namespace dmx
