// Always-on invariant checks.
//
// Protocol code asserts its preconditions and internal invariants with
// DMX_CHECK; violations indicate a bug in the algorithm implementation (or
// a caller breaking the paper's assumptions, e.g. issuing two outstanding
// requests from one node) and abort with a diagnostic. These stay enabled
// in release builds: correctness of a mutual-exclusion protocol is the
// product, not a debugging aid.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dmx::detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

}  // namespace dmx::detail

#define DMX_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::dmx::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                \
  } while (false)

#define DMX_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream dmx_check_oss;                              \
      dmx_check_oss << msg;                                          \
      ::dmx::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  dmx_check_oss.str());              \
    }                                                                \
  } while (false)
