// Closed-form cost models from the paper (Chapters 2 and 6), as code.
//
// Two uses: benches print these next to measured numbers, and property
// tests assert that the simulator's measured averages equal the analytic
// values exactly — on arbitrary trees, not just the star the paper
// analyses (the per-tree averages generalize §6.2's derivation).
#pragma once

#include "topology/tree.hpp"

namespace dmx::analysis {

// --- §6.1 worst-case messages per critical-section entry -----------------
int lamport_worst_case(int n);            // 3(N-1)
int ricart_agrawala_worst_case(int n);    // 2(N-1)
int carvalho_roucairol_worst_case(int n); // 2(N-1) (lower bound is 0)
int suzuki_kasami_worst_case(int n);      // N
int singhal_worst_case(int n);            // N
double maekawa_best_case(int n);          // ~3 sqrt(N)
double maekawa_worst_case(int n);         // ~7 sqrt(N)
int raymond_worst_case(const topology::Tree& tree);  // 2D
int neilsen_worst_case(const topology::Tree& tree);  // D+1
int central_worst_case();                 // 3

// --- §6.2 average messages per entry --------------------------------------
/// Star topology: 3 - 5/N + 2/N^2 (the paper's closed form).
double neilsen_star_average(int n);
/// Centralized scheme: 3 - 3/N.
double central_average(int n);

/// Exact uniform average for Neilsen on an arbitrary tree: the cost of a
/// single entry with requester r and token at h is d(r,h)+1 (0 if r==h);
/// averaging over all (h, r) pairs generalizes the paper's derivation.
double neilsen_tree_average(const topology::Tree& tree);

/// Same for Raymond: cost 2*d(r,h) — the token retraces the request path.
double raymond_tree_average(const topology::Tree& tree);

// --- §6.3 synchronization delay -------------------------------------------
int neilsen_sync_delay();                          // 1
int suzuki_kasami_sync_delay();                    // 1
int singhal_sync_delay();                          // 1
int central_sync_delay();                          // 2
int raymond_sync_delay(const topology::Tree& tree);  // <= D

// --- §6.4 storage ----------------------------------------------------------
/// Bytes of protocol state per Neilsen node: three scalar variables.
std::size_t neilsen_node_state_bytes();

}  // namespace dmx::analysis
