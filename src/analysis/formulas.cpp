#include "analysis/formulas.hpp"

#include <cmath>

#include "common/types.hpp"

namespace dmx::analysis {

int lamport_worst_case(int n) { return 3 * (n - 1); }
int ricart_agrawala_worst_case(int n) { return 2 * (n - 1); }
int carvalho_roucairol_worst_case(int n) { return 2 * (n - 1); }
int suzuki_kasami_worst_case(int n) { return n; }
int singhal_worst_case(int n) { return n; }
double maekawa_best_case(int n) { return 3.0 * std::sqrt(n); }
double maekawa_worst_case(int n) { return 7.0 * std::sqrt(n); }
int raymond_worst_case(const topology::Tree& tree) {
  return 2 * tree.diameter();
}
int neilsen_worst_case(const topology::Tree& tree) {
  return tree.diameter() + 1;
}
int central_worst_case() { return 3; }

double neilsen_star_average(int n) {
  const double nd = n;
  return 3.0 - 5.0 / nd + 2.0 / (nd * nd);
}

double central_average(int n) { return 3.0 - 3.0 / static_cast<double>(n); }

namespace {

/// Sum of pairwise distances over ordered (h, r) pairs with h != r.
long long ordered_distance_sum(const topology::Tree& tree) {
  long long sum = 0;
  for (NodeId h = 1; h <= tree.size(); ++h) {
    for (NodeId r = 1; r <= tree.size(); ++r) {
      if (h != r) sum += tree.distance(h, r);
    }
  }
  return sum;
}

}  // namespace

double neilsen_tree_average(const topology::Tree& tree) {
  const long long n = tree.size();
  const long long pairs = n * n;
  // r == h contributes 0; r != h contributes d(r,h) + 1.
  const long long total = ordered_distance_sum(tree) + n * (n - 1);
  return static_cast<double>(total) / static_cast<double>(pairs);
}

double raymond_tree_average(const topology::Tree& tree) {
  const long long n = tree.size();
  const long long pairs = n * n;
  return static_cast<double>(2 * ordered_distance_sum(tree)) /
         static_cast<double>(pairs);
}

int neilsen_sync_delay() { return 1; }
int suzuki_kasami_sync_delay() { return 1; }
int singhal_sync_delay() { return 1; }
int central_sync_delay() { return 2; }
int raymond_sync_delay(const topology::Tree& tree) { return tree.diameter(); }

std::size_t neilsen_node_state_bytes() {
  return sizeof(bool) + 2 * sizeof(NodeId);
}

}  // namespace dmx::analysis
