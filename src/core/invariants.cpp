#include "core/invariants.hpp"

#include <numeric>
#include <sstream>
#include <vector>

namespace dmx::core {
namespace {

/// Union-find over node ids 1..n.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n + 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  /// Returns false if a and b were already connected (a cycle).
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

InvariantReport fail(const std::string& what) { return {false, what}; }

}  // namespace

InvariantReport check_next_forest(const NodeView& nodes) {
  const std::size_t n = nodes.size() - 1;
  DisjointSets sets(n);
  for (NodeId v = 1; v <= static_cast<NodeId>(n); ++v) {
    const NodeId next = nodes[static_cast<std::size_t>(v)]->next();
    if (next == kNilNode) continue;
    if (!sets.unite(static_cast<std::size_t>(v),
                    static_cast<std::size_t>(next))) {
      std::ostringstream oss;
      oss << "NEXT edge " << v << " -> " << next
          << " closes a cycle in the undirected NEXT graph";
      return fail(oss.str());
    }
  }
  return {};
}

InvariantReport check_paths_reach_sink(const NodeView& nodes) {
  const auto n = static_cast<NodeId>(nodes.size() - 1);
  for (NodeId v = 1; v <= n; ++v) {
    NodeId cur = v;
    int steps = 0;
    while (nodes[static_cast<std::size_t>(cur)]->next() != kNilNode) {
      cur = nodes[static_cast<std::size_t>(cur)]->next();
      if (++steps >= n) {
        std::ostringstream oss;
        oss << "NEXT path from node " << v << " does not reach a sink within "
            << n << " steps (Lemma 2 violated)";
        return fail(oss.str());
      }
    }
  }
  return {};
}

InvariantReport check_sink_count(const NodeView& nodes,
                                 std::size_t in_flight_requests) {
  std::size_t sinks = 0;
  for (std::size_t v = 1; v < nodes.size(); ++v) {
    if (nodes[v]->is_sink()) ++sinks;
  }
  if (sinks < 1) {
    return fail("no sink node in the system");
  }
  if (sinks > in_flight_requests + 1) {
    std::ostringstream oss;
    oss << sinks << " sinks with only " << in_flight_requests
        << " REQUEST messages in transit";
    return fail(oss.str());
  }
  return {};
}

InvariantReport check_sink_states(const NodeView& nodes) {
  for (std::size_t v = 1; v < nodes.size(); ++v) {
    const NeilsenNode& node = *nodes[v];
    if (!node.is_sink()) continue;
    // Lemma 1: a sink holds the token (states H, E, EF) or has its own
    // request outstanding (states R, RF). A sink in state N would strand
    // requests forwarded to it.
    if (node.state_label() == "N") {
      std::ostringstream oss;
      oss << "node " << v << " is a sink but idle without the token";
      return fail(oss.str());
    }
  }
  return {};
}

InvariantReport check_all(const NodeView& nodes,
                          std::size_t in_flight_requests) {
  using CheckFn = InvariantReport (*)(const NodeView&);
  for (CheckFn check_fn :
       {&check_next_forest, &check_paths_reach_sink, &check_sink_states}) {
    InvariantReport report = check_fn(nodes);
    if (!report.ok) return report;
  }
  return check_sink_count(nodes, in_flight_requests);
}

}  // namespace dmx::core
