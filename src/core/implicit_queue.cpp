#include "core/implicit_queue.hpp"

#include "common/check.hpp"

namespace dmx::core {

NodeId find_token_holder(const NodeView& nodes) {
  NodeId holder = kNilNode;
  for (NodeId v = 1; v < static_cast<NodeId>(nodes.size()); ++v) {
    if (nodes[static_cast<std::size_t>(v)]->has_token()) {
      DMX_CHECK_MSG(holder == kNilNode,
                    "two token holders: " << holder << " and " << v);
      holder = v;
    }
  }
  return holder;
}

std::vector<NodeId> deduce_waiting_queue(const NodeView& nodes,
                                         NodeId holder) {
  DMX_CHECK(holder >= 1 && holder < static_cast<NodeId>(nodes.size()));
  std::vector<NodeId> queue;
  std::vector<bool> seen(nodes.size(), false);
  seen[static_cast<std::size_t>(holder)] = true;
  NodeId cur = nodes[static_cast<std::size_t>(holder)]->follow();
  while (cur != kNilNode) {
    DMX_CHECK_MSG(!seen[static_cast<std::size_t>(cur)],
                  "FOLLOW chain cycles through node " << cur);
    seen[static_cast<std::size_t>(cur)] = true;
    queue.push_back(cur);
    cur = nodes[static_cast<std::size_t>(cur)]->follow();
  }
  return queue;
}

}  // namespace dmx::core
