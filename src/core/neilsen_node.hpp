// The Neilsen–Mizuno DAG-based distributed mutual exclusion algorithm.
//
// Faithful implementation of Figure 3 of the paper, restructured from the
// blocking pseudo-code (procedures P1/P2) into the event-driven MutexNode
// interface. Each node keeps exactly the paper's three variables:
//
//   HOLDING — this node holds the token and no request is pending for it;
//   NEXT    — the neighbour on the path along which requests are forwarded
//             (0 = this node is a sink);
//   FOLLOW  — the node to pass the token to after this node's own use
//             (0 = nobody queued behind this node).
//
// The six states of Figure 4 (N, R, RF, E, EF, H) correspond to:
//   N  : !holding, idle,    follow==0        (next != 0)
//   R  : !holding, waiting, follow==0, sink
//   RF : !holding, waiting, follow!=0        (non-sink; NEXT was rewritten)
//   E  : in CS,             follow==0
//   EF : in CS,             follow!=0
//   H  : holding, idle,     sink
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "proto/mutex_node.hpp"

namespace dmx::core {

class NeilsenNode final : public proto::MutexNode {
 public:
  /// Application-visible critical-section status.
  enum class CsStatus { kIdle, kWaiting, kInCs };

  /// Pre-initialized construction (the state Figure 5 would establish):
  /// `initial_next` is the neighbour toward the token holder, or kNilNode
  /// if this node is the holder, in which case `holding` must be true.
  NeilsenNode(NodeId initial_next, bool holding);

  /// Uninitialized construction for the distributed INIT procedure
  /// (Figure 5). `neighbors` are this node's logical-tree neighbours.
  /// The designated holder must be driven with start_init(); all others
  /// initialize upon their first INITIALIZE message.
  NeilsenNode(std::vector<NodeId> neighbors, bool is_initial_holder);

  /// Figure 5, holder branch: set variables and flood INITIALIZE to all
  /// neighbours. Only valid on the node constructed as initial holder.
  void start_init(proto::Context& ctx);

  /// Reconstructs a node in an arbitrary mid-protocol state. Exists for
  /// the exhaustive model checker (src/modelcheck), which snapshots and
  /// restores node states while exploring every interleaving; the
  /// restored node runs the exact same handler code as live nodes.
  static NeilsenNode restore(bool holding, NodeId next, NodeId follow,
                             CsStatus cs);

  // MutexNode interface ----------------------------------------------------
  void request_cs(proto::Context& ctx) override;
  void release_cs(proto::Context& ctx) override;
  void on_message(proto::Context& ctx, NodeId from,
                  const net::Message& message) override;
  bool has_token() const override;
  /// A remote requester is queued behind this node exactly when FOLLOW is
  /// set: every REQUEST routed to the sink lands in its FOLLOW variable
  /// (P2), so a token holder always sees remote interest here.
  bool has_remote_request() const override { return follow_ != kNilNode; }
  std::size_t state_bytes() const override;
  std::string debug_state() const override;
  std::string snapshot() const override;
  void restore(std::string_view blob) override;

  // Introspection used by invariant checks, traces and the paper-example
  // tests ------------------------------------------------------------------
  bool holding() const { return holding_; }
  NodeId next() const { return next_; }
  NodeId follow() const { return follow_; }
  bool is_sink() const { return next_ == kNilNode; }
  bool initialized() const { return initialized_; }
  CsStatus cs_status() const { return cs_; }

  /// Figure 4 state label ("N", "R", "RF", "E", "EF" or "H").
  std::string state_label() const;

 private:
  void handle_request(proto::Context& ctx, NodeId hop, NodeId origin);
  void handle_privilege(proto::Context& ctx);
  void handle_initialize(proto::Context& ctx, NodeId from);

  bool initialized_ = false;
  bool holding_ = false;
  NodeId next_ = kNilNode;
  NodeId follow_ = kNilNode;
  CsStatus cs_ = CsStatus::kIdle;
  bool is_initial_holder_ = false;          // INIT protocol only
  std::vector<NodeId> neighbors_;           // INIT protocol only
};

}  // namespace dmx::core
