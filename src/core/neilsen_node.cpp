#include "core/neilsen_node.hpp"

#include <memory>
#include <sstream>

#include "common/check.hpp"
#include "core/messages.hpp"
#include "proto/snapshot.hpp"

namespace dmx::core {

NeilsenNode::NeilsenNode(NodeId initial_next, bool holding)
    : initialized_(true), holding_(holding), next_(initial_next) {
  // Exactly the holder is the sink initially (Chapter 3: "its NEXT
  // variable points to 0").
  DMX_CHECK_MSG(holding == (initial_next == kNilNode),
                "initial sink and token holder must coincide");
}

NeilsenNode::NeilsenNode(std::vector<NodeId> neighbors,
                         bool is_initial_holder)
    : is_initial_holder_(is_initial_holder), neighbors_(std::move(neighbors)) {}

NeilsenNode NeilsenNode::restore(bool holding, NodeId next, NodeId follow,
                                 CsStatus cs) {
  NeilsenNode node(std::vector<NodeId>{}, false);
  node.initialized_ = true;
  node.holding_ = holding;
  node.next_ = next;
  node.follow_ = follow;
  node.cs_ = cs;
  return node;
}

void NeilsenNode::start_init(proto::Context& ctx) {
  DMX_CHECK_MSG(is_initial_holder_, "start_init on a non-holder node");
  DMX_CHECK(!initialized_);
  // Figure 5, holder branch.
  initialized_ = true;
  holding_ = true;
  next_ = kNilNode;
  follow_ = kNilNode;
  for (NodeId neighbor : neighbors_) {
    ctx.send(neighbor, std::make_unique<InitializeMessage>());
  }
}

void NeilsenNode::handle_initialize(proto::Context& ctx, NodeId from) {
  // Figure 5, non-holder branch. In a tree the INITIALIZE flood reaches
  // each node exactly once.
  DMX_CHECK_MSG(!initialized_, "duplicate INITIALIZE at node " << ctx.self());
  initialized_ = true;
  holding_ = false;
  next_ = from;
  follow_ = kNilNode;
  for (NodeId neighbor : neighbors_) {
    if (neighbor != from) {
      ctx.send(neighbor, std::make_unique<InitializeMessage>());
    }
  }
}

void NeilsenNode::request_cs(proto::Context& ctx) {
  DMX_CHECK_MSG(initialized_, "request before initialization");
  DMX_CHECK_MSG(cs_ == CsStatus::kIdle,
                "node " << ctx.self() << " already has an outstanding request");
  // Procedure P1.
  if (!holding_) {
    // send REQUEST(I, I) to NEXT; NEXT := 0 — this node becomes the new
    // sink (tail of the implicit queue) until a later request re-points it.
    DMX_CHECK(next_ != kNilNode);
    cs_ = CsStatus::kWaiting;
    const NodeId to = next_;
    next_ = kNilNode;
    ctx.send(to, std::make_unique<RequestMessage>(ctx.self(), ctx.self()));
    // "wait until PRIVILEGE message is received" — resumed in
    // handle_privilege().
    return;
  }
  // Already holding: HOLDING := false and enter immediately.
  holding_ = false;
  cs_ = CsStatus::kInCs;
  ctx.grant();
}

void NeilsenNode::release_cs(proto::Context& ctx) {
  DMX_CHECK_MSG(cs_ == CsStatus::kInCs,
                "release without being in the critical section");
  cs_ = CsStatus::kIdle;
  // Tail of procedure P1: pass the token along the implicit queue, or
  // retain it if nobody follows.
  if (follow_ != kNilNode) {
    const NodeId to = follow_;
    follow_ = kNilNode;
    ctx.send(to, std::make_unique<PrivilegeMessage>());
  } else {
    holding_ = true;
  }
}

void NeilsenNode::handle_request(proto::Context& ctx, NodeId hop,
                                 NodeId origin) {
  // Procedure P2, on REQUEST(X, Y) from X.
  if (next_ == kNilNode) {
    // This node is a sink: the request reached the end of the path.
    if (holding_) {
      // Transition 8 (state H): hand the token straight to the origin.
      holding_ = false;
      ctx.send(origin, std::make_unique<PrivilegeMessage>());
    } else {
      // States R or E/EF-with-free-FOLLOW: enqueue the origin behind us.
      // A sink saves at most one request (Theorem 1); a second request
      // cannot arrive while FOLLOW is occupied because setting FOLLOW
      // also makes this node a non-sink (NEXT := X below).
      DMX_CHECK_MSG(follow_ == kNilNode,
                    "sink " << ctx.self() << " already has FOLLOW set");
      follow_ = origin;
    }
  } else {
    // Intermediate node: forward on behalf of the origin, rewriting the
    // hop field to ourselves.
    ctx.send(next_, std::make_unique<RequestMessage>(ctx.self(), origin));
  }
  // In every case the edge to the requester flips toward the new sink.
  next_ = hop;
}

void NeilsenNode::handle_privilege(proto::Context& ctx) {
  DMX_CHECK_MSG(cs_ == CsStatus::kWaiting,
                "PRIVILEGE at node " << ctx.self() << " which is not waiting");
  DMX_CHECK(!holding_);
  cs_ = CsStatus::kInCs;
  ctx.grant();
}

void NeilsenNode::on_message(proto::Context& ctx, NodeId from,
                             const net::Message& message) {
  if (const auto* init = dynamic_cast<const InitializeMessage*>(&message)) {
    (void)init;
    handle_initialize(ctx, from);
    return;
  }
  DMX_CHECK_MSG(initialized_, "protocol message before initialization");
  if (const auto* req = dynamic_cast<const RequestMessage*>(&message)) {
    DMX_CHECK_MSG(req->hop() == from,
                  "REQUEST hop field " << req->hop()
                                       << " does not match sender " << from);
    handle_request(ctx, req->hop(), req->origin());
    return;
  }
  if (dynamic_cast<const PrivilegeMessage*>(&message) != nullptr) {
    handle_privilege(ctx);
    return;
  }
  DMX_CHECK_MSG(false, "unexpected message kind " << message.kind());
}

bool NeilsenNode::has_token() const {
  // Possession = HOLDING, or executing the critical section (P1 clears
  // HOLDING before entering; the token stays here until release).
  return holding_ || cs_ == CsStatus::kInCs;
}

std::size_t NeilsenNode::state_bytes() const {
  // §6.4: "Each node maintains three simple variables."
  return sizeof(bool) + 2 * sizeof(NodeId);
}

std::string NeilsenNode::state_label() const {
  if (cs_ == CsStatus::kInCs) return follow_ == kNilNode ? "E" : "EF";
  if (cs_ == CsStatus::kWaiting) return follow_ == kNilNode ? "R" : "RF";
  return holding_ ? "H" : "N";
}

std::string NeilsenNode::snapshot() const {
  proto::SnapshotWriter w;
  w.boolean(initialized_);
  w.boolean(holding_);
  w.i32(next_);
  w.i32(follow_);
  w.u8(static_cast<std::uint8_t>(cs_));
  w.boolean(is_initial_holder_);
  w.i32_seq(neighbors_);
  return w.take();
}

void NeilsenNode::restore(std::string_view blob) {
  proto::SnapshotReader r(blob);
  initialized_ = r.boolean();
  holding_ = r.boolean();
  next_ = r.i32();
  follow_ = r.i32();
  cs_ = static_cast<CsStatus>(r.u8());
  is_initial_holder_ = r.boolean();
  r.i32_seq(neighbors_);
  r.finish();
}

std::string NeilsenNode::debug_state() const {
  std::ostringstream oss;
  oss << "HOLDING=" << (holding_ ? 't' : 'f') << " NEXT=" << next_
      << " FOLLOW=" << follow_ << " [" << state_label() << "]";
  return oss.str();
}

}  // namespace dmx::core
