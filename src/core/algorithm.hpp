// Registry descriptor for the Neilsen DAG algorithm.
#pragma once

#include "proto/algorithm.hpp"

namespace dmx::core {

/// Neilsen–Mizuno DAG algorithm, pre-initialized from the cluster spec's
/// logical tree with NEXT pointers oriented toward the initial token
/// holder (the state the Figure 5 INIT procedure establishes).
proto::Algorithm make_neilsen_algorithm();

}  // namespace dmx::core
