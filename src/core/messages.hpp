// The three message types of the Neilsen DAG algorithm.
//
// Chapter 3: "Two types of messages, REQUEST and PRIVILEGE, are passed
// between nodes." REQUEST(X, Y) carries the adjacent hop X and the
// originating node Y (two integers — §6.4). PRIVILEGE is the token and
// "needs no data structure". INITIALIZE(I) appears only during the
// distributed initialization procedure of Figure 5.
#pragma once

#include <string>

#include "common/types.hpp"
#include "net/message.hpp"
#include "net/wire_format.hpp"

namespace dmx::core {

class RequestMessage final : public net::Message {
 public:
  /// REQUEST(X, Y): `hop` is the adjacent node the message came from (the
  /// paper's X, rewritten at each forwarding step); `origin` is the node
  /// whose critical-section request this is (the paper's Y, invariant
  /// along the path).
  RequestMessage(NodeId hop, NodeId origin)
      : net::Message(interned_kind()), hop_(hop), origin_(origin) {}

  NodeId hop() const { return hop_; }
  NodeId origin() const { return origin_; }

  std::size_t payload_bytes() const override { return 2 * sizeof(NodeId); }
  std::string describe() const override {
    return "REQUEST(" + std::to_string(hop_) + "," + std::to_string(origin_) +
           ")";
  }
  net::MessagePtr clone() const override {
    return std::make_unique<RequestMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind =
        net::MessageKind::of("neilsen.request");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter w(out);
    w.i32(hop_);
    w.i32(origin_);
  }

 private:
  static net::MessageKind interned_kind() {
    static const net::MessageKind kind = net::MessageKind::of("REQUEST");
    return kind;
  }

  NodeId hop_;
  NodeId origin_;
};

class PrivilegeMessage final : public net::Message {
 public:
  PrivilegeMessage() : net::Message(interned_kind()) {}
  std::size_t payload_bytes() const override { return 0; }
  net::MessagePtr clone() const override {
    return std::make_unique<PrivilegeMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind =
        net::MessageKind::of("neilsen.privilege");
    return kind;
  }

 private:
  static net::MessageKind interned_kind() {
    static const net::MessageKind kind = net::MessageKind::of("PRIVILEGE");
    return kind;
  }
};

class InitializeMessage final : public net::Message {
 public:
  InitializeMessage() : net::Message(interned_kind()) {}
  /// Carries the sender's id (delivered out of band as the envelope
  /// sender); no additional payload.
  std::size_t payload_bytes() const override { return 0; }
  net::MessagePtr clone() const override {
    return std::make_unique<InitializeMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind =
        net::MessageKind::of("neilsen.initialize");
    return kind;
  }

 private:
  static net::MessageKind interned_kind() {
    static const net::MessageKind kind = net::MessageKind::of("INITIALIZE");
    return kind;
  }
};

}  // namespace dmx::core
