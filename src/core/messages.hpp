// The three message types of the Neilsen DAG algorithm.
//
// Chapter 3: "Two types of messages, REQUEST and PRIVILEGE, are passed
// between nodes." REQUEST(X, Y) carries the adjacent hop X and the
// originating node Y (two integers — §6.4). PRIVILEGE is the token and
// "needs no data structure". INITIALIZE(I) appears only during the
// distributed initialization procedure of Figure 5.
#pragma once

#include <sstream>

#include "common/types.hpp"
#include "net/message.hpp"

namespace dmx::core {

class RequestMessage final : public net::Message {
 public:
  /// REQUEST(X, Y): `hop` is the adjacent node the message came from (the
  /// paper's X, rewritten at each forwarding step); `origin` is the node
  /// whose critical-section request this is (the paper's Y, invariant
  /// along the path).
  RequestMessage(NodeId hop, NodeId origin) : hop_(hop), origin_(origin) {}

  NodeId hop() const { return hop_; }
  NodeId origin() const { return origin_; }

  std::string_view kind() const override { return "REQUEST"; }
  std::size_t payload_bytes() const override { return 2 * sizeof(NodeId); }
  std::string describe() const override {
    std::ostringstream oss;
    oss << "REQUEST(" << hop_ << "," << origin_ << ")";
    return oss.str();
  }

 private:
  NodeId hop_;
  NodeId origin_;
};

class PrivilegeMessage final : public net::Message {
 public:
  std::string_view kind() const override { return "PRIVILEGE"; }
  std::size_t payload_bytes() const override { return 0; }
};

class InitializeMessage final : public net::Message {
 public:
  std::string_view kind() const override { return "INITIALIZE"; }
  /// Carries the sender's id (delivered out of band as the envelope
  /// sender); no additional payload.
  std::size_t payload_bytes() const override { return 0; }
};

}  // namespace dmx::core
