// Structural invariants of the Neilsen algorithm, checked continuously in
// tests. These encode Lemma 1, Lemma 2 and the sink-count discussion of
// Chapter 3 as executable predicates over a snapshot of node states plus
// the number of in-flight REQUEST messages.
#pragma once

#include <string>

#include "core/implicit_queue.hpp"

namespace dmx::core {

struct InvariantReport {
  bool ok = true;
  std::string violation;  // empty when ok
};

/// The undirected graph induced by NEXT pointers (edge v — NEXT_v for
/// every non-sink v) is a forest. Chapter 5, assumption 2: "the acyclic
/// structure is always preserved."
InvariantReport check_next_forest(const NodeView& nodes);

/// Lemma 2: from every node, following NEXT pointers terminates at a sink
/// in fewer than N steps.
InvariantReport check_paths_reach_sink(const NodeView& nodes);

/// Chapter 3: with r REQUEST messages in transit there can be at most
/// r + 1 sinks; in a quiescent system exactly one.
InvariantReport check_sink_count(const NodeView& nodes,
                                 std::size_t in_flight_requests);

/// Lemma 1: a sink either holds the token (and FOLLOW may be set only if
/// it is executing/waiting semantics permit) or has an outstanding own
/// request. Concretely: a sink in state N (idle, not holding) is illegal.
InvariantReport check_sink_states(const NodeView& nodes);

/// Runs all of the above, returning the first violation found.
InvariantReport check_all(const NodeView& nodes,
                          std::size_t in_flight_requests);

}  // namespace dmx::core
