// Deduction of the implicit distributed waiting queue.
//
// The paper's headline structural property (Abstract, Chapter 3): "no node
// or message explicitly holds a waiting queue of pending requests. The
// queue is maintained implicitly ... at any given time, the queue may be
// constructed by observing the states of the nodes." This module performs
// that observation: starting from the token holder, follow FOLLOW
// pointers to enumerate the nodes that will receive the token, in order.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/neilsen_node.hpp"

namespace dmx::core {

/// View over all protocol nodes; index 0 unused, 1..n populated.
using NodeView = std::vector<const NeilsenNode*>;

/// Returns the id of the node currently possessing the token, or kNilNode
/// if the token is in flight (inside a PRIVILEGE message).
NodeId find_token_holder(const NodeView& nodes);

/// Reconstructs the waiting queue by walking FOLLOW pointers starting at
/// `holder` (typically find_token_holder()). The returned sequence lists
/// the nodes that will be granted the token after the holder, in grant
/// order. Checks against cycles (which would indicate a protocol bug).
std::vector<NodeId> deduce_waiting_queue(const NodeView& nodes,
                                         NodeId holder);

}  // namespace dmx::core
