#include "core/algorithm.hpp"

#include <memory>

#include "common/check.hpp"
#include "core/neilsen_node.hpp"

namespace dmx::core {

proto::Algorithm make_neilsen_algorithm() {
  proto::Algorithm algo;
  algo.name = "Neilsen";
  algo.token_based = true;
  algo.token_message_kinds = {"PRIVILEGE"};
  algo.needs_tree = true;
  algo.holder_sees_remote_requests = true;
  algo.factory = [](const proto::ClusterSpec& spec) {
    DMX_CHECK_MSG(spec.tree != nullptr, "Neilsen requires a logical tree");
    DMX_CHECK(spec.tree->size() == spec.n);
    DMX_CHECK(spec.initial_token_holder >= 1 &&
              spec.initial_token_holder <= spec.n);
    const std::vector<NodeId> next =
        spec.tree->next_pointers_toward(spec.initial_token_holder);
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      const bool holder = v == spec.initial_token_holder;
      nodes[static_cast<std::size_t>(v)] = std::make_unique<NeilsenNode>(
          next[static_cast<std::size_t>(v)], holder);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::core
