// Single-entry measurement probes.
//
// Chapter 6 states per-entry message counts for specific placements of the
// requester and the token (e.g. "requesting node and sink node at opposite
// ends of the longest path"). A probe quiesces the system, optionally
// parks the token at a chosen node, zeroes the network counters, performs
// exactly one request/enter/release cycle and reports what it cost.
#pragma once

#include "common/types.hpp"
#include "harness/cluster.hpp"

namespace dmx::harness {

struct ProbeResult {
  /// Messages sent from the request until the node entered its CS.
  std::uint64_t messages_to_enter = 0;
  /// Messages sent from the request until the system quiesced after the
  /// release (includes release-time traffic such as RELEASE broadcasts —
  /// the paper accounts these to the entry too).
  std::uint64_t messages_total = 0;
  /// Virtual ticks from request to entry (with unit latency: sequential
  /// message hops on the critical path).
  Tick ticks_to_enter = 0;
};

/// Parks the token at `target` by running one uncounted entry/release
/// cycle there and draining the system. For assertion-based algorithms
/// this simply makes `target` the most recent entrant (which is the
/// analogous "favourable placement" notion, e.g. for Carvalho–Roucairol's
/// retained permissions).
void park_token_at(Cluster& cluster, NodeId target);

/// Runs one complete measured entry from `requester`, holding the CS for
/// `hold_ticks`. The system must be quiescent (no outstanding requests).
ProbeResult single_entry_probe(Cluster& cluster, NodeId requester,
                               Tick hold_ticks = 0);

}  // namespace dmx::harness
