#include "harness/probe.hpp"

#include "common/check.hpp"

namespace dmx::harness {

void park_token_at(Cluster& cluster, NodeId target) {
  cluster.run_to_quiescence();
  cluster.hold_and_release(target, 0);
  cluster.run_to_quiescence();
  if (cluster.algorithm().token_based) {
    DMX_CHECK_MSG(cluster.node(target).has_token(),
                  "token did not come to rest at node " << target);
  }
}

ProbeResult single_entry_probe(Cluster& cluster, NodeId requester,
                               Tick hold_ticks) {
  cluster.run_to_quiescence();
  cluster.network().reset_stats();

  ProbeResult result;
  const Tick started_at = cluster.simulator().now();
  bool entered = false;
  cluster.request_cs(requester, [&](NodeId v) {
    entered = true;
    result.messages_to_enter = cluster.network().stats().total_sent;
    result.ticks_to_enter = cluster.simulator().now() - started_at;
    cluster.simulator().schedule_after(hold_ticks,
                                       [&cluster, v] { cluster.release_cs(v); });
  });
  cluster.run_to_quiescence();
  DMX_CHECK_MSG(entered, "probe request was never granted");
  result.messages_total = cluster.network().stats().total_sent;
  return result;
}

}  // namespace dmx::harness
