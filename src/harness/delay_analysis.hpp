// Post-hoc analysis of the CS event log.
//
// Synchronization delay (§6.3) is "the number of sequential messages
// required after a node I leaves its critical section before a node J can
// enter its critical section", measured only when J was already blocked
// waiting when I exited. With unit link latency, ticks equal sequential
// messages, so we extract exit→next-enter tick gaps from the event log.
#pragma once

#include <vector>

#include "harness/cluster.hpp"
#include "metrics/summary.hpp"

namespace dmx::harness {

/// Waiting time (request → enter) per entry.
metrics::Summary waiting_times(const std::vector<CsEvent>& events);

/// Synchronization delay samples: for each exit followed by an entry of a
/// node whose request predated the exit, the tick gap between them.
metrics::Summary synchronization_delays(const std::vector<CsEvent>& events);

/// Bypass counts: for each completed entry, how many LATER-requesting
/// nodes entered the critical section first. 0 everywhere = perfectly
/// FIFO by request time. Quantifies the fairness beyond the paper's
/// starvation-freedom theorem.
metrics::Summary bypass_counts(const std::vector<CsEvent>& events);

/// Entries per node, for fairness indices (index = node id, [0] unused).
std::vector<double> entries_per_node(const std::vector<CsEvent>& events,
                                     int n);

}  // namespace dmx::harness
