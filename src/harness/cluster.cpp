#include "harness/cluster.hpp"

#include <utility>

#include "common/check.hpp"

namespace dmx::harness {

/// Per-node adapter implementing the protocol's view of the world.
class Cluster::NodeContext final : public proto::Context {
 public:
  NodeContext(Cluster& cluster, NodeId self)
      : cluster_(cluster), self_(self) {}

  NodeId self() const override { return self_; }
  int cluster_size() const override { return cluster_.size(); }
  void send(NodeId to, net::MessagePtr message) override {
    cluster_.network_->send(self_, to, std::move(message));
  }
  void grant() override { cluster_.on_grant(self_); }

 private:
  Cluster& cluster_;
  NodeId self_;
};

Cluster::Cluster(const proto::Algorithm& algorithm, ClusterConfig config)
    : algorithm_(algorithm), config_(std::move(config)),
      sim_(config_.wheel_span) {
  DMX_CHECK(config_.n >= 1);
  token_kinds_.reserve(algorithm_.token_message_kinds.size());
  for (const std::string& kind : algorithm_.token_message_kinds) {
    token_kinds_.push_back(net::MessageKind::of(kind));
  }
  if (algorithm_.needs_tree) {
    DMX_CHECK_MSG(config_.tree.has_value(),
                  algorithm_.name << " requires a logical tree");
    DMX_CHECK(config_.tree->size() == config_.n);
  }

  std::unique_ptr<net::LatencyModel> latency =
      config_.latency_model
          ? std::move(config_.latency_model)
          : std::make_unique<net::FixedLatency>(config_.fixed_latency);
  network_ = std::make_unique<net::Network>(sim_, config_.n,
                                            std::move(latency), config_.seed);
  network_->set_delivery_handler(
      [this](const net::Envelope& env) { deliver(env); });

  proto::ClusterSpec spec;
  spec.n = config_.n;
  spec.initial_token_holder = config_.initial_token_holder;
  spec.tree = config_.tree.has_value() ? &*config_.tree : nullptr;
  spec.seed = config_.seed;
  nodes_ = algorithm_.factory(spec);
  DMX_CHECK_MSG(nodes_.size() == static_cast<std::size_t>(config_.n) + 1,
                "factory must return n+1 slots (index 0 unused)");
  for (NodeId v = 1; v <= config_.n; ++v) {
    DMX_CHECK(nodes_[static_cast<std::size_t>(v)] != nullptr);
    contexts_.push_back(std::make_unique<NodeContext>(*this, v));
  }
  app_state_.assign(static_cast<std::size_t>(config_.n) + 1, AppState::kIdle);
  grant_callbacks_.assign(static_cast<std::size_t>(config_.n) + 1, nullptr);
  check_invariants();
}

Cluster::~Cluster() = default;

proto::MutexNode& Cluster::node(NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  return *nodes_[static_cast<std::size_t>(v)];
}

const proto::MutexNode& Cluster::node(NodeId v) const {
  DMX_CHECK(v >= 1 && v <= config_.n);
  return *nodes_[static_cast<std::size_t>(v)];
}

proto::Context& Cluster::context(NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  return *contexts_[static_cast<std::size_t>(v) - 1];
}

void Cluster::request_cs(NodeId v, std::function<void(NodeId)> on_grant) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK_MSG(app_state_[static_cast<std::size_t>(v)] == AppState::kIdle,
                "node " << v << " already requesting or in CS");
  app_state_[static_cast<std::size_t>(v)] = AppState::kWaiting;
  grant_callbacks_[static_cast<std::size_t>(v)] = std::move(on_grant);
  if (log_events_) {
    events_.push_back({sim_.now(), v, CsEvent::Kind::kRequest});
  }
  node(v).request_cs(*contexts_[static_cast<std::size_t>(v) - 1]);
  check_invariants();
}

void Cluster::on_grant(NodeId v) {
  DMX_CHECK_MSG(app_state_[static_cast<std::size_t>(v)] == AppState::kWaiting,
                "grant for node " << v << " which is not waiting");
  DMX_CHECK_MSG(occupant_ == kNilNode,
                "mutual exclusion violated: node "
                    << v << " granted while node " << occupant_
                    << " is inside its critical section");
  app_state_[static_cast<std::size_t>(v)] = AppState::kInCs;
  occupant_ = v;
  ++entries_;
  if (log_events_) {
    events_.push_back({sim_.now(), v, CsEvent::Kind::kEnter});
  }
  // Take the callback by move so a new request from within it is safe.
  auto callback = std::move(grant_callbacks_[static_cast<std::size_t>(v)]);
  grant_callbacks_[static_cast<std::size_t>(v)] = nullptr;
  if (callback) callback(v);
}

void Cluster::release_cs(NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK_MSG(occupant_ == v, "release by node " << v
                                                   << " but occupant is "
                                                   << occupant_);
  app_state_[static_cast<std::size_t>(v)] = AppState::kIdle;
  occupant_ = kNilNode;
  if (log_events_) {
    events_.push_back({sim_.now(), v, CsEvent::Kind::kExit});
  }
  node(v).release_cs(*contexts_[static_cast<std::size_t>(v) - 1]);
  check_invariants();
}

void Cluster::hold_and_release(NodeId v, Tick hold_ticks,
                               std::function<void(NodeId)> after_release) {
  DMX_CHECK(hold_ticks >= 0);
  request_cs(v, [this, hold_ticks,
                 after_release = std::move(after_release)](NodeId entered) {
    sim_.schedule_after(hold_ticks,
                        [this, entered, after_release]() {
                          release_cs(entered);
                          if (after_release) after_release(entered);
                        });
  });
}

bool Cluster::is_waiting(NodeId v) const {
  return app_state_[static_cast<std::size_t>(v)] == AppState::kWaiting;
}

bool Cluster::is_in_cs(NodeId v) const {
  return app_state_[static_cast<std::size_t>(v)] == AppState::kInCs;
}

void Cluster::set_post_event_hook(std::function<void(Cluster&)> hook) {
  post_event_hook_ = std::move(hook);
}

void Cluster::check_invariants() {
  // Safety: at most one CS occupant is structural (on_grant checks);
  // verify token uniqueness for token-based algorithms.
  if (algorithm_.token_based) {
    std::size_t tokens = 0;
    for (NodeId v = 1; v <= config_.n; ++v) {
      if (node(v).has_token()) ++tokens;
    }
    for (const net::MessageKind kind : token_kinds_) {
      tokens += network_->in_flight_count(kind);
    }
    DMX_CHECK_MSG(tokens == 1, "token count is " << tokens
                                                 << " (must be exactly 1)");
  }
  if (post_event_hook_) post_event_hook_(*this);
}

void Cluster::deliver(const net::Envelope& env) {
  DMX_CHECK(env.to >= 1 && env.to <= config_.n);
  node(env.to).on_message(*contexts_[static_cast<std::size_t>(env.to) - 1],
                          env.from, *env.message);
  check_invariants();
}

void Cluster::run_to_quiescence() { sim_.run(); }

}  // namespace dmx::harness
