#include "harness/delay_analysis.hpp"

#include <map>
#include <optional>

namespace dmx::harness {

metrics::Summary waiting_times(const std::vector<CsEvent>& events) {
  metrics::Summary summary;
  std::map<NodeId, Tick> requested_at;
  for (const CsEvent& event : events) {
    switch (event.kind) {
      case CsEvent::Kind::kRequest:
        requested_at[event.node] = event.at;
        break;
      case CsEvent::Kind::kEnter: {
        auto it = requested_at.find(event.node);
        if (it != requested_at.end()) {
          summary.add(static_cast<double>(event.at - it->second));
          requested_at.erase(it);
        }
        break;
      }
      case CsEvent::Kind::kExit:
        break;
    }
  }
  return summary;
}

metrics::Summary synchronization_delays(const std::vector<CsEvent>& events) {
  metrics::Summary summary;
  std::map<NodeId, Tick> requested_at;
  std::optional<Tick> pending_exit;
  for (const CsEvent& event : events) {
    switch (event.kind) {
      case CsEvent::Kind::kRequest:
        requested_at[event.node] = event.at;
        break;
      case CsEvent::Kind::kExit:
        pending_exit = event.at;
        break;
      case CsEvent::Kind::kEnter: {
        auto it = requested_at.find(event.node);
        if (pending_exit.has_value() && it != requested_at.end() &&
            it->second <= *pending_exit) {
          summary.add(static_cast<double>(event.at - *pending_exit));
        }
        pending_exit.reset();
        if (it != requested_at.end()) requested_at.erase(it);
        break;
      }
    }
  }
  return summary;
}

metrics::Summary bypass_counts(const std::vector<CsEvent>& events) {
  struct Entry {
    Tick requested_at = 0;
    Tick entered_at = 0;
  };
  std::vector<Entry> entries;
  std::map<NodeId, Tick> requested_at;
  for (const CsEvent& event : events) {
    if (event.kind == CsEvent::Kind::kRequest) {
      requested_at[event.node] = event.at;
    } else if (event.kind == CsEvent::Kind::kEnter) {
      auto it = requested_at.find(event.node);
      if (it != requested_at.end()) {
        entries.push_back({it->second, event.at});
        requested_at.erase(it);
      }
    }
  }
  metrics::Summary summary;
  for (const Entry& mine : entries) {
    int bypasses = 0;
    for (const Entry& other : entries) {
      if (other.requested_at > mine.requested_at &&
          other.entered_at < mine.entered_at) {
        ++bypasses;
      }
    }
    summary.add(static_cast<double>(bypasses));
  }
  return summary;
}

std::vector<double> entries_per_node(const std::vector<CsEvent>& events,
                                     int n) {
  std::vector<double> counts(static_cast<std::size_t>(n) + 1, 0.0);
  for (const CsEvent& event : events) {
    if (event.kind == CsEvent::Kind::kEnter && event.node >= 1 &&
        event.node <= n) {
      counts[static_cast<std::size_t>(event.node)] += 1.0;
    }
  }
  return counts;
}

}  // namespace dmx::harness
