// Simulation harness: instantiates an algorithm's nodes over the
// deterministic simulator + network, drives application-level
// request/release, and checks safety invariants after every event.
//
// Invariants enforced continuously (violations throw):
//  * at most one node inside its critical section;
//  * for token-based algorithms, exactly one token in the system, counting
//    both resident tokens (MutexNode::has_token) and in-flight token
//    messages (Algorithm::token_message_kinds).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"
#include "sim/simulator.hpp"
#include "topology/tree.hpp"

namespace dmx::harness {

struct ClusterConfig {
  int n = 0;
  NodeId initial_token_holder = 1;
  /// Logical tree for path-forwarding algorithms; required when the
  /// algorithm declares needs_tree.
  std::optional<topology::Tree> tree;
  /// Per-hop latency in ticks when no custom model is given. With the
  /// default of 1 tick, elapsed virtual time equals sequential message
  /// hops — the unit Chapter 6 uses.
  Tick fixed_latency = 1;
  /// Optional custom latency model (overrides fixed_latency).
  std::unique_ptr<net::LatencyModel> latency_model;
  std::uint64_t seed = 1;
  /// Timing-wheel span for the simulator (power of two >= 64). Size it
  /// past the latency model's mean so deliveries stay on the O(1) wheel
  /// path instead of spilling into the overflow heap.
  std::size_t wheel_span = sim::Simulator::kDefaultWheelSpan;
};

/// Application-level critical-section events, for delay analyses.
struct CsEvent {
  enum class Kind { kRequest, kEnter, kExit };
  Tick at = 0;
  NodeId node = kNilNode;
  Kind kind = Kind::kRequest;
};

class Cluster {
 public:
  Cluster(const proto::Algorithm& algorithm, ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const { return config_.n; }
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *network_; }
  const proto::Algorithm& algorithm() const { return algorithm_; }

  proto::MutexNode& node(NodeId v);
  const proto::MutexNode& node(NodeId v) const;

  /// The protocol-facing context of node `v` (for driving algorithm-
  /// specific entry points such as NeilsenNode::start_init).
  proto::Context& context(NodeId v);

  /// Typed access to a node for algorithm-specific introspection.
  template <typename T>
  T& node_as(NodeId v) {
    auto* typed = dynamic_cast<T*>(&node(v));
    DMX_CHECK_MSG(typed != nullptr, "node has unexpected concrete type");
    return *typed;
  }

  /// Issues a critical-section request for node `v`. `on_grant` (optional)
  /// fires when the node enters its CS — possibly synchronously. The
  /// caller must eventually release_cs(v) (or use hold_and_release).
  void request_cs(NodeId v, std::function<void(NodeId)> on_grant = nullptr);

  /// Node `v` leaves its critical section.
  void release_cs(NodeId v);

  /// Convenience: request, then hold the CS for `hold_ticks` once entered,
  /// then release; `after_release` (optional) fires after the release.
  void hold_and_release(NodeId v, Tick hold_ticks,
                        std::function<void(NodeId)> after_release = nullptr);

  bool is_waiting(NodeId v) const;
  bool is_in_cs(NodeId v) const;
  /// Node currently inside the critical section, or kNilNode.
  NodeId cs_occupant() const { return occupant_; }

  std::uint64_t total_entries() const { return entries_; }

  /// CS event log (request/enter/exit), in virtual-time order. Enabled by
  /// default; disable for very long runs.
  const std::vector<CsEvent>& events() const { return events_; }
  void set_event_logging(bool enabled) { log_events_ = enabled; }

  /// Extra per-event invariant hook (e.g. core::check_all); runs after the
  /// built-in checks. Receives this cluster.
  void set_post_event_hook(std::function<void(Cluster&)> hook);

  /// Runs the built-in invariant checks once, immediately.
  void check_invariants();

  /// Drains all pending simulator events (the system quiesces when no
  /// requests are outstanding).
  void run_to_quiescence();

 private:
  class NodeContext;

  void on_grant(NodeId v);
  void deliver(const net::Envelope& env);

  proto::Algorithm algorithm_;
  /// algorithm_.token_message_kinds, interned once: check_invariants runs
  /// after every event and must not compare strings.
  std::vector<net::MessageKind> token_kinds_;
  ClusterConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<proto::MutexNode>> nodes_;  // 1..n
  std::vector<std::unique_ptr<NodeContext>> contexts_;    // 1..n

  enum class AppState { kIdle, kWaiting, kInCs };
  std::vector<AppState> app_state_;                       // 1..n
  std::vector<std::function<void(NodeId)>> grant_callbacks_;  // 1..n
  NodeId occupant_ = kNilNode;
  std::uint64_t entries_ = 0;
  bool log_events_ = true;
  std::vector<CsEvent> events_;
  std::function<void(Cluster&)> post_event_hook_;
};

}  // namespace dmx::harness
