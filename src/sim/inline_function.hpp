// Move-only type-erased `void()` callable with fixed inline storage.
//
// The simulator schedules millions of callbacks per experiment; storing
// them as std::function costs a heap allocation whenever the capture
// exceeds the (implementation-defined, typically 16-byte) small-buffer
// size. InlineCallback fixes the buffer contract at kInlineCallbackCapacity
// bytes: every callable that fits (and is nothrow-move-constructible) is
// stored in place, so the steady-state event loop never touches the heap.
//
// Size contract: keep scheduler lambdas within kInlineCallbackCapacity
// bytes of captured state (six pointers). Larger callables still work —
// they fall back to a heap-allocated holder — but each fallback is counted
// in heap_allocations() and the zero-allocation test will flag hot paths
// that regress.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dmx::sim {

inline constexpr std::size_t kInlineCallbackCapacity = 48;

class InlineCallback {
 public:
  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                    std::is_invocable_r_v<void, std::decay_t<F>&>,
                int> = 0>
  InlineCallback(F&& f) {  // NOLINT(runtime/explicit)
    using Decayed = std::decay_t<F>;
    if constexpr (fits_inline<Decayed>()) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(f));
      ops_ = &kInlineOps<Decayed>;
    } else {
      ++heap_allocations_;
      *reinterpret_cast<Decayed**>(storage_) =
          new Decayed(std::forward<F>(f));
      ops_ = &kHeapOps<Decayed>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  InlineCallback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Number of callables (process-wide) that exceeded the inline capacity
  /// and fell back to the heap. The zero-allocation test pins this to stay
  /// flat across steady-state simulation.
  static std::uint64_t heap_allocations() noexcept {
    return heap_allocations_;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the payload at `dst` from `src` and destroys `src`;
    /// nullptr means the payload is trivially relocatable (plain memcpy).
    void (*relocate)(void* dst, void* src) noexcept;
    /// nullptr means trivially destructible (no-op).
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineCallbackCapacity &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  static constexpr Ops kInlineOps = {
      [](void* storage) { (*static_cast<F*>(storage))(); },
      std::is_trivially_copyable_v<F>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              ::new (dst) F(std::move(*static_cast<F*>(src)));
              static_cast<F*>(src)->~F();
            },
      std::is_trivially_destructible_v<F>
          ? nullptr
          : +[](void* storage) noexcept { static_cast<F*>(storage)->~F(); },
  };

  // Heap payloads hold a plain pointer in storage_: trivially relocatable.
  template <typename F>
  static constexpr Ops kHeapOps = {
      [](void* storage) { (**static_cast<F**>(storage))(); },
      nullptr,
      [](void* storage) noexcept { delete *static_cast<F**>(storage); },
  };

  void relocate_from(InlineCallback& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, kInlineCallbackCapacity);
    }
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCallbackCapacity];
  const Ops* ops_ = nullptr;

  inline static std::uint64_t heap_allocations_ = 0;
};

}  // namespace dmx::sim
