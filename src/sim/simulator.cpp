#include "sim/simulator.hpp"

#include <bit>
#include <utility>

namespace dmx::sim {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

Simulator::Simulator(std::size_t wheel_span)
    : wheel_size_(wheel_span),
      wheel_mask_(wheel_span - 1),
      wheel_words_(wheel_span / 64),
      wheel_span_(static_cast<Tick>(wheel_span)) {
  DMX_CHECK_MSG(wheel_span >= 64 && (wheel_span & (wheel_span - 1)) == 0,
                "wheel span must be a power of two >= 64, got "
                    << wheel_span);
  bucket_head_.assign(wheel_size_, kNpos);
  bucket_tail_.assign(wheel_size_, kNpos);
  occupied_.assign(wheel_words_, 0);
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = record(slot).next_free;
    record(slot).next_free = kNpos;
    return slot;
  }
  DMX_CHECK_MSG(slot_count_ < kNpos, "event slot space exhausted");
  if (slot_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Chunk>());
  }
  return static_cast<std::uint32_t>(slot_count_++);
}

void Simulator::release_slot(std::uint32_t slot) {
  EventRecord& rec = record(slot);
  rec.cb = nullptr;
  ++rec.generation;  // invalidates every EventId issued for this slot
  rec.heap_pos = kNpos;
  rec.prev = kNpos;
  rec.next = kNpos;
  rec.state = SlotState::kFree;
  rec.next_free = free_head_;
  free_head_ = slot;
}

// --- Timing wheel ----------------------------------------------------------

void Simulator::wheel_append(std::uint32_t slot) {
  EventRecord& rec = record(slot);
  const std::size_t bucket =
      static_cast<std::size_t>(rec.at) & wheel_mask_;
  rec.state = SlotState::kWheel;
  rec.next = kNpos;
  rec.prev = bucket_tail_[bucket];
  if (rec.prev == kNpos) {
    bucket_head_[bucket] = slot;
    occupied_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
  } else {
    record(rec.prev).next = slot;
  }
  bucket_tail_[bucket] = slot;
  ++wheel_count_;
}

void Simulator::wheel_unlink(std::uint32_t slot) {
  EventRecord& rec = record(slot);
  const std::size_t bucket =
      static_cast<std::size_t>(rec.at) & wheel_mask_;
  if (rec.prev != kNpos) {
    record(rec.prev).next = rec.next;
  } else {
    bucket_head_[bucket] = rec.next;
  }
  if (rec.next != kNpos) {
    record(rec.next).prev = rec.prev;
  } else {
    bucket_tail_[bucket] = rec.prev;
  }
  if (bucket_head_[bucket] == kNpos) {
    occupied_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }
  --wheel_count_;
}

std::size_t Simulator::wheel_min_bucket() const {
  // Every pending wheel event has at in [now_, now_ + span), so the
  // circular distance from now_'s bucket equals at - now_: the first
  // occupied bucket scanning circularly from now_ holds the minimum tick.
  const std::size_t start = static_cast<std::size_t>(now_) & wheel_mask_;
  std::size_t word_index = start >> 6;
  std::uint64_t word = occupied_[word_index] & (~std::uint64_t{0}
                                               << (start & 63));
  for (std::size_t i = 0; i <= wheel_words_; ++i) {
    if (word != 0) {
      return (word_index << 6) +
             static_cast<std::size_t>(std::countr_zero(word));
    }
    word_index = (word_index + 1) & (wheel_words_ - 1);
    word = occupied_[word_index];
  }
  DMX_CHECK_MSG(false, "wheel_min_bucket on empty wheel");
  return 0;
}

void Simulator::migrate_overflow() {
  // Invariant: outside this function, every overflow event satisfies
  // at >= now_ + span. It is restored after every advance of now_ and
  // BEFORE any user callback runs, so a callback scheduling a same-tick
  // event always appends behind the earlier-scheduled (migrated) one.
  while (!heap_.empty() && heap_[0].at - now_ < wheel_span_) {
    const std::uint32_t slot = heap_[0].slot;
    heap_pop_root();  // pops in (at, seq) order, preserving bucket FIFO
    wheel_append(slot);
  }
}

// --- Overflow heap ---------------------------------------------------------
// The sift routines take the displaced entry by value and write it once at
// its final position (hole percolation): half the stores of swap-based
// sifting, and comparisons only touch the contiguous heap array.

void Simulator::heap_sift_up(std::size_t pos, HeapEntry entry) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!fires_before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    record(heap_[pos].slot).heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  record(entry.slot).heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::heap_sift_down(std::size_t pos, HeapEntry entry) {
  const std::size_t size = heap_.size();
  while (true) {
    const std::size_t first = kArity * pos + 1;
    if (first >= size) break;
    const std::size_t last = first + kArity < size ? first + kArity : size;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (fires_before(heap_[c], heap_[best])) best = c;
    }
    if (!fires_before(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    record(heap_[pos].slot).heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  record(entry.slot).heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::heap_pop_root() {
  const HeapEntry displaced = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) heap_sift_down(0, displaced);
}

void Simulator::heap_remove(std::size_t pos) {
  const HeapEntry displaced = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the last entry
  // The displaced entry may belong above or below `pos`; try both (one is
  // a no-op).
  heap_sift_down(pos, displaced);
  const std::size_t settled = record(displaced.slot).heap_pos;
  if (settled == pos) heap_sift_up(pos, displaced);
}

// --- Scheduling ------------------------------------------------------------

EventId Simulator::schedule_at(Tick at, Callback cb) {
  DMX_CHECK_MSG(at >= now_, "cannot schedule into the past: at=" << at
                                                                 << " now="
                                                                 << now_);
  DMX_CHECK(static_cast<bool>(cb));
  const std::uint32_t slot = acquire_slot();
  EventRecord& rec = record(slot);
  rec.cb = std::move(cb);
  rec.at = at;
  if (at - now_ < wheel_span_) {
    wheel_append(slot);
  } else {
    rec.state = SlotState::kHeap;
    const HeapEntry entry{at, next_seq_++, slot};
    heap_.push_back(entry);  // placeholder; sift writes the final layout
    heap_sift_up(heap_.size() - 1, entry);
  }
  return (static_cast<EventId>(rec.generation) << 32) |
         (static_cast<EventId>(slot) + 1);
}

EventId Simulator::schedule_after(Tick delay, Callback cb) {
  DMX_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t lo = static_cast<std::uint32_t>(id);
  if (lo == 0) return false;
  const std::uint32_t slot = lo - 1;
  if (slot >= slot_count_) return false;
  EventRecord& rec = record(slot);
  if (rec.state == SlotState::kFree) return false;  // fired or cancelled
  if (rec.generation != static_cast<std::uint32_t>(id >> 32)) return false;
  if (rec.state == SlotState::kWheel) {
    wheel_unlink(slot);
  } else {
    heap_remove(rec.heap_pos);
  }
  release_slot(slot);
  return true;
}

bool Simulator::step() {
  return step_limited(std::numeric_limits<Tick>::max());
}

bool Simulator::step_limited(Tick until) {
  // Selection needs no migration: the overflow invariant guarantees every
  // heap event is at least a full window later than every wheel event.
  std::uint32_t slot;
  if (wheel_count_ > 0) {
    const std::size_t bucket = wheel_min_bucket();
    slot = bucket_head_[bucket];
    if (record(slot).at > until) return false;
    wheel_unlink(slot);
  } else if (!heap_.empty()) {
    // Beyond-window event with nothing nearer: fire straight from the
    // heap.
    if (heap_[0].at > until) return false;
    slot = heap_[0].slot;
    heap_pop_root();
  } else {
    return false;
  }
  EventRecord& rec = record(slot);
  now_ = rec.at;
  // Restore the overflow invariant for the new now_ before user code runs.
  migrate_overflow();
  // Detach the callback and free the slot before invoking: the callback
  // may schedule new events (reusing this slot) or cancel others.
  Callback cb = std::move(rec.cb);
  release_slot(slot);
  ++executed_;
  cb();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) {
    ++n;
  }
  return n;
}

std::size_t Simulator::run_until(Tick until) {
  DMX_CHECK(until >= now_);
  std::size_t n = 0;
  while (step_limited(until)) {
    ++n;
  }
  now_ = until;
  migrate_overflow();  // now_ advanced: restore the overflow invariant
  return n;
}

}  // namespace dmx::sim
