#include "sim/simulator.hpp"

#include <utility>

namespace dmx::sim {

EventId Simulator::schedule_at(Tick at, Callback cb) {
  DMX_CHECK_MSG(at >= now_, "cannot schedule into the past: at=" << at
                                                                 << " now="
                                                                 << now_);
  DMX_CHECK(cb != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{at, id, std::move(cb)});
  return id;
}

EventId Simulator::schedule_after(Tick delay, Callback cb) {
  DMX_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // We cannot remove from the middle of a priority queue; mark instead and
  // skip on pop. The set is purged as entries surface.
  return cancelled_.insert(id).second;
}

bool Simulator::pop_next(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top returns const ref; move via const_cast is the
    // standard idiom but we copy the small fields and move the callback
    // by re-pushing nothing.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    auto it = cancelled_.find(e.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(e);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry e;
  if (!pop_next(e)) return false;
  now_ = e.at;
  ++executed_;
  e.cb();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) {
    ++n;
  }
  return n;
}

std::size_t Simulator::run_until(Tick until) {
  DMX_CHECK(until >= now_);
  std::size_t n = 0;
  Entry e;
  while (!queue_.empty()) {
    // Peek at the next live event time without executing.
    if (!pop_next(e)) break;
    if (e.at > until) {
      // Too late: put it back and stop.
      queue_.push(std::move(e));
      break;
    }
    now_ = e.at;
    ++executed_;
    ++n;
    e.cb();
  }
  now_ = until;
  return n;
}

}  // namespace dmx::sim
