// Deterministic discrete-event simulation kernel.
//
// All experiment measurements in this repository run on virtual time: the
// network schedules message deliveries, the workload schedules request
// arrivals and critical-section exits. Events at equal timestamps fire in
// insertion order (a monotonically increasing sequence number breaks ties),
// which makes every run a pure function of (code, seed).
//
// Architecture (the zero-allocation kernel):
//  * Event records live in a slot map: fixed-size chunks of records with
//    an intrusive free list. Slots are recycled, so steady-state scheduling
//    never allocates once the arena has grown to the peak concurrent event
//    count. Chunking keeps record addresses stable (no reallocation moves)
//    and each chunk small enough that the allocator recycles it from its
//    free lists instead of returning pages to the OS — bulk scheduling
//    does not pay page-fault churn.
//  * Dispatch is a two-level timer. Events within kWheelSpan ticks of now()
//    go into a timing wheel — one FIFO bucket per tick, O(1) schedule,
//    O(1) pop (a 1024-bit occupancy bitmap finds the next non-empty
//    bucket), O(1) cancel (doubly-linked intrusive bucket lists). Because
//    every pending wheel event satisfies now() <= at < schedule_time + span,
//    no two distinct pending ticks ever map to the same bucket, and FIFO
//    append per bucket is exactly (timestamp, sequence) order.
//  * Events beyond the wheel window overflow into an indexed 4-ary min-heap
//    keyed by (timestamp, sequence): O(log n) push/pop/cancel with the sort
//    key stored in the contiguous heap array and a back-pointer
//    (`heap_pos`) in the slot record. Invariant: every overflow event is
//    at least a full window later than now(). It is restored — overflow
//    events that have come within the window migrate into their buckets in
//    (timestamp, sequence) order — each time now() advances, before any
//    user callback runs, which is what keeps migrated events ordered ahead
//    of same-tick events scheduled later.
//  * EventIds encode (generation << 32 | slot + 1). The generation bumps on
//    every slot release, so stale ids — cancelled, fired, or recycled —
//    are rejected in O(1) without any auxiliary set. pending() and idle()
//    are exact by construction.
//  * Callbacks are InlineCallback (48-byte in-place storage), not
//    std::function: scheduling a lambda that fits does zero heap work.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/inline_function.hpp"

namespace dmx::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

/// Single-threaded virtual-time event loop.
class Simulator {
 public:
  using Callback = InlineCallback;

  /// Default timing-wheel span in ticks (events further out than the span
  /// overflow into the min-heap).
  static constexpr std::size_t kDefaultWheelSpan = 1024;

  /// `wheel_span` sizes the timing wheel: events within `wheel_span` ticks
  /// of now() take the O(1) wheel path; everything further overflows into
  /// the heap. Must be a power of two >= 64 (the occupancy bitmap works in
  /// 64-bit words). Latency models with means well beyond the default 1024
  /// should pass a larger span so deliveries stay on the O(1) path; the
  /// event *order* is identical for every span (the determinism contract
  /// does not depend on it).
  explicit Simulator(std::size_t wheel_span = kDefaultWheelSpan);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The wheel span this simulator was constructed with, in ticks.
  std::size_t wheel_span() const { return wheel_size_; }

  /// Current virtual time. Starts at 0.
  Tick now() const { return now_; }

  /// Schedules `cb` to run at absolute virtual time `at` (>= now()).
  EventId schedule_at(Tick at, Callback cb);

  /// Schedules `cb` to run `delay` ticks from now (delay >= 0).
  EventId schedule_after(Tick delay, Callback cb);

  /// Cancels a pending event: O(1) for events within the wheel window,
  /// O(log n) for far-future events. Returns false if it already fired,
  /// was already cancelled, or the id was never issued.
  bool cancel(EventId id);

  /// Runs the next pending event. Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains or `max_events` have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events =
                      std::numeric_limits<std::size_t>::max());

  /// Runs all events with timestamp <= `until`. Virtual time ends at
  /// `until` even if the queue drains earlier. Returns events executed.
  std::size_t run_until(Tick until);

  /// True if no events are pending. Exact: cancelled events are removed
  /// immediately.
  bool idle() const { return wheel_count_ == 0 && heap_.empty(); }

  /// Number of events pending. Exact under cancellation.
  std::size_t pending() const { return wheel_count_ + heap_.size(); }

  /// Total number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }

 private:
  static constexpr std::uint32_t kNpos =
      std::numeric_limits<std::uint32_t>::max();

  enum class SlotState : std::uint8_t { kFree, kWheel, kHeap };

  /// Overflow-heap entries carry the full sort key so sift comparisons
  /// stay within the contiguous heap array; the slot is dereferenced only
  /// to maintain its back-pointer.
  struct HeapEntry {
    Tick at;
    std::uint64_t seq;  // insertion order; breaks timestamp ties
    std::uint32_t slot;
  };

  struct EventRecord {
    Callback cb;
    Tick at = 0;
    std::uint32_t generation = 0;
    std::uint32_t heap_pos = kNpos;  // position in heap_ (kHeap state only)
    std::uint32_t prev = kNpos;      // bucket list links (kWheel state only)
    std::uint32_t next = kNpos;
    std::uint32_t next_free = kNpos;
    SlotState state = SlotState::kFree;
  };

  // 512 records ≈ 45 KiB per chunk: comfortably below glibc's mmap
  // threshold, so retired chunks cycle through malloc free lists rather
  // than munmap (fresh Simulators would otherwise re-fault every page).
  static constexpr std::size_t kChunkBits = 9;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  struct Chunk {
    std::array<EventRecord, kChunkSize> records;
  };

  EventRecord& record(std::uint32_t slot) {
    return chunks_[slot >> kChunkBits]->records[slot & kChunkMask];
  }
  const EventRecord& record(std::uint32_t slot) const {
    return chunks_[slot >> kChunkBits]->records[slot & kChunkMask];
  }

  /// Strict ordering: earlier timestamp first, FIFO (by sequence) among
  /// equal timestamps.
  static bool fires_before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  /// step() with a timestamp ceiling: fires the next event only if its
  /// timestamp is <= `until`. Selection happens once (run_until would
  /// otherwise scan the wheel bitmap twice per event: peek, then pop).
  bool step_limited(Tick until);

  void wheel_append(std::uint32_t slot);
  void wheel_unlink(std::uint32_t slot);
  /// Bucket with the smallest pending tick; requires wheel_count_ > 0.
  std::size_t wheel_min_bucket() const;
  /// Moves overflow events that have come within the wheel window into
  /// their buckets (in (at, seq) order, preserving FIFO).
  void migrate_overflow();

  void heap_sift_up(std::size_t pos, HeapEntry entry);
  void heap_sift_down(std::size_t pos, HeapEntry entry);
  void heap_pop_root();
  /// Removes the heap entry at `pos`, restoring the heap property.
  void heap_remove(std::size_t pos);

  Tick now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t slot_count_ = 0;  // records handed out so far
  std::uint32_t free_head_ = kNpos;

  // Timing wheel geometry, fixed at construction. wheel_size_ is a power
  // of two >= 64; events with at - now() < wheel_span_ take the O(1)
  // wheel path.
  std::size_t wheel_size_;
  std::size_t wheel_mask_;
  std::size_t wheel_words_;
  Tick wheel_span_;

  // Timing wheel: per-tick FIFO bucket lists plus an occupancy bitmap.
  std::vector<std::uint32_t> bucket_head_;
  std::vector<std::uint32_t> bucket_tail_;
  std::vector<std::uint64_t> occupied_;
  std::size_t wheel_count_ = 0;

  // Overflow: 4-ary min-heap keyed by (at, seq) for far-future events.
  std::vector<HeapEntry> heap_;
};

}  // namespace dmx::sim
