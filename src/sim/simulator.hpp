// Deterministic discrete-event simulation kernel.
//
// All experiment measurements in this repository run on virtual time: the
// network schedules message deliveries, the workload schedules request
// arrivals and critical-section exits. Events at equal timestamps fire in
// insertion order (a monotonically increasing sequence number breaks ties),
// which makes every run a pure function of (code, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dmx::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

/// Single-threaded virtual-time event loop.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Starts at 0.
  Tick now() const { return now_; }

  /// Schedules `cb` to run at absolute virtual time `at` (>= now()).
  EventId schedule_at(Tick at, Callback cb);

  /// Schedules `cb` to run `delay` ticks from now (delay >= 0).
  EventId schedule_after(Tick delay, Callback cb);

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Runs the next pending event. Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains or `max_events` have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events =
                      std::numeric_limits<std::size_t>::max());

  /// Runs all events with timestamp <= `until`. Virtual time ends at
  /// `until` even if the queue drains earlier. Returns events executed.
  std::size_t run_until(Tick until);

  /// True if no events are pending (cancelled events excluded).
  bool idle() const { return queue_.size() == cancelled_.size(); }

  /// Number of events pending (excludes cancelled ones).
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Total number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    Tick at = 0;
    EventId id = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  /// Pops the next non-cancelled event, or returns false.
  bool pop_next(Entry& out);

  Tick now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace dmx::sim
