// Non-blocking epoll event loop shipping codec frames between processes.
//
// One EventLoop per process: a listening loopback TCP socket, one
// non-blocking connection per peer node, and a single loop thread that
// owns every file descriptor. The loop multiplexes with epoll; an eventfd
// wakes it when application threads queue outbound frames or request
// shutdown. All socket reads and writes happen on the loop thread — the
// send path only appends encoded bytes to a peer's outbox under a short
// mutex, so senders never block on the kernel.
//
// Peer identity: the mesh convention is that node i dials every peer
// j < i and accepts connections from every j > i (no duplicate links).
// A dialed peer is identified immediately; an accepted one is anonymous
// until its HELLO control frame arrives. send() to a not-yet-identified
// peer fails — call wait_for_peers() before starting traffic.
//
// Backpressure: each peer's outbox is bounded. When it passes the high
// watermark, send() blocks the calling thread until the loop drains it
// below the low watermark (the loop thread itself never blocks). Stats
// record the peak outbox depth and how often senders had to wait.
//
// Disconnects: a peer that closes its socket after sending GOODBYE left
// deliberately (process shutdown); anything else — EOF without GOODBYE,
// a socket error, a malformed frame — is a crash, reported through
// on_peer_down so the space above can fence the dead node exactly like
// the in-process fault path does.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"
#include "transport/codec.hpp"

namespace dmx::transport {

/// Loop-lifetime counters (monotonic, relaxed; read after quiesce or as
/// a progress snapshot).
struct EventLoopStats {
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  /// Reads that left a partial frame buffered for reassembly.
  std::atomic<std::uint64_t> partial_frames{0};
  /// send() calls that blocked on the outbox high watermark.
  std::atomic<std::uint64_t> backpressure_waits{0};
  /// Deepest outbox observed (bytes), across all peers.
  std::atomic<std::uint64_t> outbox_peak_bytes{0};
  /// epoll_wait returns (each is one loop-thread wakeup, whatever mix of
  /// socket and eventfd readiness it carried).
  std::atomic<std::uint64_t> epoll_wakeups{0};
};

struct EventLoopConfig {
  NodeId self = kNilNode;
  /// Outbox bytes at which send() starts blocking the caller.
  std::size_t outbox_high_watermark = 4u << 20;
  /// Outbox bytes at which blocked senders are released.
  std::size_t outbox_low_watermark = 1u << 20;
};

class EventLoop {
 public:
  /// Delivery of one decoded protocol frame. Runs on the loop thread —
  /// hand the message to a strand or queue, do not block.
  using FrameHandler =
      std::function<void(const FrameHeader&, net::MessagePtr)>;
  /// A peer crashed (disconnected without GOODBYE) or sent garbage.
  /// Runs on the loop thread.
  using PeerDownHandler = std::function<void(NodeId)>;

  EventLoop(EventLoopConfig config, FrameHandler on_frame,
            PeerDownHandler on_peer_down);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Binds the loopback listening socket (ephemeral port) and returns the
  /// port for the rendezvous. Call once, before start().
  std::uint16_t listen();

  /// Dials peer `peer` at loopback `port` and queues the HELLO frame.
  /// Call before start() (the mesh convention: dial every lower id).
  void connect(NodeId peer, std::uint16_t port);

  /// Starts the loop thread. listen() and all connect() calls must be
  /// done.
  void start();

  /// Sends GOODBYE to every peer, flushes outboxes, stops the loop
  /// thread, and closes every socket. Idempotent.
  void stop();

  /// Number of identified peers currently connected.
  int connected_peers() const;

  /// Blocks until `count` peers are identified, or the deadline passes
  /// (false). Use after start() to rendezvous the full mesh.
  bool wait_for_peers(int count, std::chrono::milliseconds timeout);

  /// Encodes `message` into a frame and queues it to `to`'s outbox;
  /// wakes the loop to flush. Returns false if the peer is unknown or
  /// down. Blocks (briefly) on outbox backpressure unless
  /// `block_on_backpressure` is false — pass false when calling from the
  /// loop thread itself (repair announcements and acks), which must
  /// never wait for a drain only it can perform. Thread-safe. Throws
  /// net::WireError for a message class with no registered codec.
  bool send(NodeId to, Epoch epoch, ResourceId resource,
            const net::Message& message, bool block_on_backpressure = true);

  const EventLoopStats& stats() const { return stats_; }

  /// First transport-level error observed (malformed frame, socket
  /// error), if any.
  std::optional<std::string> first_error() const;

 private:
  struct Peer;

  void wake();
  void loop();
  void handle_accept();
  void handle_readable(Peer& peer);
  void handle_writable(Peer& peer);
  /// Parses complete frames out of `peer`'s read buffer; returns false if
  /// the stream is corrupt (caller tears the peer down).
  bool drain_frames(Peer& peer);
  /// Flushes as much outbox as the socket accepts; arms EPOLLOUT on a
  /// partial write. Loop thread only.
  void flush(Peer& peer);
  void arm(Peer& peer, bool want_write);
  /// Closes and forgets the peer; fires on_peer_down unless the peer said
  /// GOODBYE (or was never identified).
  void teardown(Peer& peer);
  void record_error(const std::string& what);

  EventLoopConfig config_;
  FrameHandler on_frame_;
  PeerDownHandler on_peer_down_;
  EventLoopStats stats_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// All live peers, keyed by fd. The map itself is loop-thread-owned
  /// once start() runs (mutations before start() are single-threaded);
  /// peers are reference-counted so a sender holding one across teardown
  /// sees its `closed` flag instead of freed memory.
  std::unordered_map<int, std::shared_ptr<Peer>> peers_by_fd_;

  /// Identified peers by node id, for the send path.
  mutable std::mutex peers_mutex_;
  std::condition_variable peers_cv_;
  std::unordered_map<NodeId, std::shared_ptr<Peer>> peers_by_id_;

  /// Peers with freshly queued output, for the loop to flush on wake.
  std::mutex dirty_mutex_;
  std::vector<std::shared_ptr<Peer>> dirty_;

  mutable std::mutex error_mutex_;
  std::optional<std::string> first_error_;
};

}  // namespace dmx::transport
