// Binary wire codec for protocol messages crossing a real socket.
//
// Every concrete message class exposes encode_binary() (payload fields,
// little-endian — see net/wire_format.hpp) and a family-qualified
// wire_kind() such as "neilsen.request"; this registry pairs each of those
// interned kinds with the family's decode_binary() function. The registry
// is keyed by the dense MessageKind ids (a flat array probe on the encode
// hot path), but the id that travels in a frame is the codec's
// *registration index*: interned ids depend on which code paths ran first
// in a given process, while registration order is fixed here, so two
// processes of the same build always agree on what wire id 7 means even
// if their intern tables diverged before the transport came up.
//
// Frame layout (all fields little-endian):
//
//   u32 length     bytes following this field (cap: kMaxFrameBytes)
//   u32 wire id    codec registration index, or a control id (>= 0xfffffff0)
//   u32 epoch      sender's configuration epoch for the resource
//   i32 resource   ResourceId demultiplexing into per-resource instances
//   i32 from       sender node id (original id space)
//   i32 to         destination node id
//   ...            family payload (encode_binary/decode_binary)
//
// Epoch and resource ride every frame so epoch fencing and per-resource
// demux survive the wire exactly as they do in-process.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "net/message.hpp"
#include "net/wire_format.hpp"

namespace dmx::transport {

/// Per-frame routing metadata (everything but the payload).
struct FrameHeader {
  std::uint32_t wire_id = 0;
  Epoch epoch = 0;
  ResourceId resource = 0;
  NodeId from = kNilNode;
  NodeId to = kNilNode;
};

/// Frames above this size are rejected as corrupt (a token queue over
/// loopback is kilobytes; megabytes means a desynchronized stream).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Control wire ids live at the top of the id space, far above any
/// registered family. kHelloWireId identifies the peer handshake frame
/// (header.from carries the dialing node's id, payload is empty);
/// kGoodbyeWireId announces a deliberate shutdown, so the following EOF
/// is an orderly departure rather than a crash.
inline constexpr std::uint32_t kControlWireIdBase = 0xfffffff0u;
inline constexpr std::uint32_t kHelloWireId = 0xffffffffu;
inline constexpr std::uint32_t kGoodbyeWireId = 0xfffffffeu;

class Codec {
 public:
  using Decoder = net::MessagePtr (*)(net::WireReader&);

  /// Registers every message family's decoder, in a fixed order, once.
  /// Idempotent and thread-safe; called lazily by every entry point below,
  /// so users never need to call it explicitly.
  static void ensure_registered();

  /// Number of registered families (wire ids are 0..family_count()-1).
  static std::size_t family_count();

  /// Stable wire id for `message`, resolved through its wire_kind().
  /// Throws net::WireError for a class with no registered codec.
  static std::uint32_t wire_id_of(const net::Message& message);

  /// Interned codec kind registered under `wire_id` (reporting/tests).
  static net::MessageKind kind_of(std::uint32_t wire_id);

  /// Decodes one message payload. Throws net::WireError on an unknown id,
  /// a truncated payload, an out-of-range enum field, or trailing bytes.
  static net::MessagePtr decode(std::uint32_t wire_id, net::WireReader& r);

  /// Appends a complete frame (length prefix + header + payload) to `out`.
  static void encode_frame(std::string& out, Epoch epoch, ResourceId resource,
                           NodeId from, NodeId to,
                           const net::Message& message);

  /// Appends a control frame with an empty payload.
  static void encode_control_frame(std::string& out, std::uint32_t wire_id,
                                   NodeId from);

  /// Parses the header fields of one frame body (the bytes after the
  /// length prefix). The reader is left positioned at the payload.
  static FrameHeader decode_header(net::WireReader& r);
};

}  // namespace dmx::transport
