#include "transport/event_loop.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"
#include "telemetry/flight_recorder.hpp"

namespace dmx::transport {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DMX_CHECK(flags >= 0);
  DMX_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  // One frame per protocol event; Nagle would serialize the ping-pong
  // message patterns of every algorithm behind delayed ACKs.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

/// One TCP link. The fd, read buffer, and epoll registration belong to
/// the loop thread; the outbox and its flags are shared with senders
/// under `out_mutex`. Peers are reference-counted so a sender holding a
/// pointer across teardown sees `closed` instead of freed memory.
struct EventLoop::Peer {
  int fd = -1;
  /// kNilNode until identified (dialed peers are born identified;
  /// accepted ones identify via HELLO).
  NodeId id = kNilNode;
  /// Peer announced an orderly shutdown; its EOF is not a crash.
  bool said_goodbye = false;  // loop thread only
  std::string inbuf;          // loop thread only
  bool want_write = false;    // loop thread only (EPOLLOUT armed)

  std::mutex out_mutex;
  std::condition_variable out_cv;
  std::string outbox;
  bool closed = false;
};

EventLoop::EventLoop(EventLoopConfig config, FrameHandler on_frame,
                     PeerDownHandler on_peer_down)
    : config_(config),
      on_frame_(std::move(on_frame)),
      on_peer_down_(std::move(on_peer_down)) {
  DMX_CHECK(config_.self >= 1);
  DMX_CHECK(config_.outbox_low_watermark <= config_.outbox_high_watermark);
  Codec::ensure_registered();
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  DMX_CHECK_MSG(epoll_fd_ >= 0, errno_string("epoll_create1"));
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  DMX_CHECK_MSG(wake_fd_ >= 0, errno_string("eventfd"));
  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  DMX_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
}

EventLoop::~EventLoop() {
  stop();
  for (auto& [fd, peer] : peers_by_fd_) {
    ::close(fd);
    std::lock_guard<std::mutex> guard(peer->out_mutex);
    peer->closed = true;
  }
  peers_by_fd_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::uint16_t EventLoop::listen() {
  DMX_CHECK(listen_fd_ < 0);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  DMX_CHECK_MSG(listen_fd_ >= 0, errno_string("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  DMX_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                errno_string("bind"));
  DMX_CHECK_MSG(::listen(listen_fd_, 64) == 0, errno_string("listen"));
  socklen_t len = sizeof(addr);
  DMX_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0);
  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  DMX_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  return ntohs(addr.sin_port);
}

void EventLoop::connect(NodeId peer_id, std::uint16_t port) {
  DMX_CHECK_MSG(!running_.load(), "connect() must precede start()");
  DMX_CHECK(peer_id >= 1 && peer_id != config_.self);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  DMX_CHECK_MSG(fd >= 0, errno_string("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // Blocking connect: loopback either succeeds immediately or the peer is
  // gone, and the rendezvous wants the failure loudly at dial time.
  DMX_CHECK_MSG(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                errno_string("connect"));
  set_nonblocking(fd);
  set_nodelay(fd);

  auto peer = std::make_shared<Peer>();
  peer->fd = fd;
  peer->id = peer_id;
  Codec::encode_control_frame(peer->outbox, kHelloWireId, config_.self);
  struct epoll_event ev {};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  DMX_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
  {
    std::lock_guard<std::mutex> guard(dirty_mutex_);
    dirty_.push_back(peer);
  }
  {
    std::lock_guard<std::mutex> guard(peers_mutex_);
    peers_by_id_.emplace(peer_id, peer);
  }
  peers_by_fd_.emplace(fd, peer);
  peers_cv_.notify_all();
  // A dialed peer is born identified.
  telemetry::FlightRecorder::record(telemetry::FlightEvent::kPeerUp,
                                    /*resource=*/0, peer_id);
}

void EventLoop::start() {
  DMX_CHECK(!running_.exchange(true));
  thread_ = std::thread([this] { loop(); });
  // connect() queued HELLO frames on the dirty list before the loop
  // existed; kick it once so they flush without waiting for socket
  // traffic.
  wake();
}

void EventLoop::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  wake();
  thread_.join();
  running_.store(false);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

int EventLoop::connected_peers() const {
  std::lock_guard<std::mutex> guard(peers_mutex_);
  return static_cast<int>(peers_by_id_.size());
}

bool EventLoop::wait_for_peers(int count, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> guard(peers_mutex_);
  return peers_cv_.wait_for(guard, timeout, [this, count] {
    return static_cast<int>(peers_by_id_.size()) >= count;
  });
}

bool EventLoop::send(NodeId to, Epoch epoch, ResourceId resource,
                     const net::Message& message,
                     bool block_on_backpressure) {
  std::shared_ptr<Peer> peer;
  {
    std::lock_guard<std::mutex> guard(peers_mutex_);
    const auto it = peers_by_id_.find(to);
    if (it == peers_by_id_.end()) return false;
    peer = it->second;
  }
  {
    std::unique_lock<std::mutex> guard(peer->out_mutex);
    if (peer->closed) return false;
    if (block_on_backpressure &&
        peer->outbox.size() >= config_.outbox_high_watermark) {
      stats_.backpressure_waits.fetch_add(1, std::memory_order_relaxed);
      telemetry::FlightRecorder::record(
          telemetry::FlightEvent::kBackpressure, resource, to,
          static_cast<std::int64_t>(peer->outbox.size()));
      wake();  // make sure the loop is draining while we wait
      peer->out_cv.wait(guard, [this, &peer] {
        return peer->closed ||
               peer->outbox.size() < config_.outbox_low_watermark;
      });
      if (peer->closed) return false;
    }
    Codec::encode_frame(peer->outbox, epoch, resource, config_.self, to,
                        message);
    const auto depth = static_cast<std::uint64_t>(peer->outbox.size());
    std::uint64_t peak =
        stats_.outbox_peak_bytes.load(std::memory_order_relaxed);
    while (depth > peak && !stats_.outbox_peak_bytes.compare_exchange_weak(
                               peak, depth, std::memory_order_relaxed)) {
    }
  }
  stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  telemetry::FlightRecorder::record(telemetry::FlightEvent::kFrameSend,
                                    resource, to);
  {
    std::lock_guard<std::mutex> guard(dirty_mutex_);
    dirty_.push_back(peer);
  }
  wake();
  return true;
}

std::optional<std::string> EventLoop::first_error() const {
  std::lock_guard<std::mutex> guard(error_mutex_);
  return first_error_;
}

void EventLoop::record_error(const std::string& what) {
  std::lock_guard<std::mutex> guard(error_mutex_);
  if (!first_error_.has_value()) first_error_ = what;
}

void EventLoop::arm(Peer& peer, bool want_write) {
  if (peer.want_write == want_write) return;
  peer.want_write = want_write;
  struct epoll_event ev {};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = peer.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, peer.fd, &ev);
}

void EventLoop::flush(Peer& peer) {
  bool below_low = false;
  bool fatal = false;
  {
    std::lock_guard<std::mutex> guard(peer.out_mutex);
    if (peer.closed) return;
    while (!peer.outbox.empty()) {
      const ssize_t n = ::send(peer.fd, peer.outbox.data(),
                               peer.outbox.size(), MSG_NOSIGNAL);
      if (n > 0) {
        stats_.bytes_sent.fetch_add(static_cast<std::uint64_t>(n),
                                    std::memory_order_relaxed);
        peer.outbox.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      fatal = true;
      break;
    }
    below_low = peer.outbox.size() < config_.outbox_low_watermark;
  }
  if (fatal) {
    drain_frames(peer);  // a buffered GOODBYE still classifies the close
    teardown(peer);
    return;
  }
  if (below_low) peer.out_cv.notify_all();
  bool pending;
  {
    std::lock_guard<std::mutex> guard(peer.out_mutex);
    pending = !peer.outbox.empty();
  }
  arm(peer, pending);
}

void EventLoop::teardown(Peer& peer) {
  const int fd = peer.fd;
  const NodeId id = peer.id;
  const bool crashed = id != kNilNode && !peer.said_goodbye &&
                       !stopping_.load(std::memory_order_relaxed);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  {
    std::lock_guard<std::mutex> guard(peer.out_mutex);
    peer.closed = true;
  }
  peer.out_cv.notify_all();
  if (id != kNilNode) {
    std::lock_guard<std::mutex> guard(peers_mutex_);
    peers_by_id_.erase(id);
  }
  peers_by_fd_.erase(fd);  // frees `peer` unless a sender holds a ref
  if (crashed) {
    telemetry::FlightRecorder::record(telemetry::FlightEvent::kPeerDown,
                                      /*resource=*/0, id);
    if (on_peer_down_) on_peer_down_(id);
  }
}

void EventLoop::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      record_error(errno_string("accept4"));
      return;
    }
    set_nodelay(fd);
    auto peer = std::make_shared<Peer>();
    peer->fd = fd;
    struct epoll_event ev {};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    DMX_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
    peers_by_fd_.emplace(fd, std::move(peer));
  }
}

bool EventLoop::drain_frames(Peer& peer) {
  std::size_t consumed = 0;
  const std::string& buf = peer.inbuf;
  for (;;) {
    if (buf.size() - consumed < 4) break;
    net::WireReader length_reader(
        std::string_view(buf.data() + consumed, 4));
    const std::uint32_t length = length_reader.u32();
    if (length > kMaxFrameBytes || length < 5 * 4) {
      record_error("peer " + std::to_string(peer.id) +
                   " sent a frame of " + std::to_string(length) +
                   " bytes; stream desynchronized");
      return false;
    }
    if (buf.size() - consumed - 4 < length) break;  // incomplete frame
    net::WireReader r(std::string_view(buf.data() + consumed + 4, length));
    consumed += 4 + length;
    try {
      const FrameHeader header = Codec::decode_header(r);
      if (header.wire_id >= kControlWireIdBase) {
        if (header.wire_id == kHelloWireId) {
          DMX_CHECK_MSG(peer.id == kNilNode || peer.id == header.from,
                        "peer " << peer.id << " re-identified as "
                                << header.from);
          peer.id = header.from;
          std::shared_ptr<Peer> self_ref = peers_by_fd_.at(peer.fd);
          {
            std::lock_guard<std::mutex> guard(peers_mutex_);
            peers_by_id_.emplace(peer.id, std::move(self_ref));
          }
          peers_cv_.notify_all();
          telemetry::FlightRecorder::record(telemetry::FlightEvent::kPeerUp,
                                            /*resource=*/0, peer.id);
        } else if (header.wire_id == kGoodbyeWireId) {
          peer.said_goodbye = true;
          telemetry::FlightRecorder::record(telemetry::FlightEvent::kGoodbye,
                                            /*resource=*/0, peer.id);
        } else {
          record_error("unknown control wire id " +
                       std::to_string(header.wire_id));
          return false;
        }
        continue;
      }
      net::MessagePtr message = Codec::decode(header.wire_id, r);
      stats_.frames_received.fetch_add(1, std::memory_order_relaxed);
      telemetry::FlightRecorder::record(telemetry::FlightEvent::kFrameRecv,
                                        header.resource, header.from);
      if (on_frame_) on_frame_(header, std::move(message));
    } catch (const net::WireError& e) {
      record_error("frame from peer " + std::to_string(peer.id) +
                   " undecodable: " + e.what());
      return false;
    }
  }
  if (consumed > 0) peer.inbuf.erase(0, consumed);
  if (!peer.inbuf.empty()) {
    stats_.partial_frames.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void EventLoop::handle_readable(Peer& peer) {
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(peer.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      stats_.bytes_received.fetch_add(static_cast<std::uint64_t>(n),
                                      std::memory_order_relaxed);
      peer.inbuf.append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {  // EOF: orderly iff GOODBYE preceded it
      drain_frames(peer);
      teardown(peer);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    // ECONNRESET and friends. Drain buffered frames before classifying
    // the close: a GOODBYE that was already read into the reassembly
    // buffer (e.g. riding the tail of the chunk before the RST) makes
    // this an orderly departure, not a crash.
    drain_frames(peer);
    teardown(peer);
    return;
  }
  if (!drain_frames(peer)) teardown(peer);
}

void EventLoop::handle_writable(Peer& peer) { flush(peer); }

void EventLoop::loop() {
  bool goodbyes_sent = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  struct epoll_event events[64];
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) {
      if (!goodbyes_sent) {
        goodbyes_sent = true;
        drain_deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
        // Snapshot first: flush() can tear a peer down, which mutates the
        // fd map under the iteration.
        std::vector<std::shared_ptr<Peer>> peers;
        peers.reserve(peers_by_fd_.size());
        for (auto& [fd, peer] : peers_by_fd_) peers.push_back(peer);
        for (const auto& peer : peers) {
          if (peer->id == kNilNode) continue;
          {
            std::lock_guard<std::mutex> guard(peer->out_mutex);
            if (peer->closed) continue;
            Codec::encode_control_frame(peer->outbox, kGoodbyeWireId,
                                        config_.self);
          }
          flush(*peer);
        }
      }
      bool all_flushed = true;
      for (auto& [fd, peer] : peers_by_fd_) {
        std::lock_guard<std::mutex> guard(peer->out_mutex);
        all_flushed = all_flushed && peer->outbox.empty();
      }
      if (all_flushed || std::chrono::steady_clock::now() >= drain_deadline) {
        return;
      }
    }
    const int timeout_ms = goodbyes_sent ? 10 : -1;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      record_error(errno_string("epoll_wait"));
      return;
    }
    stats_.epoll_wakeups.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        std::vector<std::shared_ptr<Peer>> dirty;
        {
          std::lock_guard<std::mutex> guard(dirty_mutex_);
          dirty.swap(dirty_);
        }
        for (const auto& peer : dirty) flush(*peer);
        continue;
      }
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      const auto it = peers_by_fd_.find(fd);
      if (it == peers_by_fd_.end()) continue;  // torn down this batch
      // Hold a ref: handle_readable may tear the peer down mid-call.
      std::shared_ptr<Peer> peer = it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        handle_readable(*peer);  // drain what's left, then teardown on EOF
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(*peer);
      // handle_readable may have torn the peer down; the fd map is
      // loop-confined, so presence there is the live check.
      if ((events[i].events & EPOLLOUT) != 0 &&
          peers_by_fd_.count(fd) != 0) {
        handle_writable(*peer);
      }
    }
  }
}

}  // namespace dmx::transport
