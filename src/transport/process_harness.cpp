#include "transport/process_harness.hpp"

#include <csignal>
#include <poll.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>

#include "common/check.hpp"

namespace dmx::transport {

namespace {

/// read()/write() the exact byte count, retrying EINTR; false on EOF or
/// error (a dead counterpart).
bool read_exact(int fd, void* buf, std::size_t bytes) {
  auto* p = static_cast<char*>(buf);
  while (bytes > 0) {
    const ssize_t n = ::read(fd, p, bytes);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t bytes) {
  const auto* p = static_cast<const char*>(buf);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

int exit_code_of(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

}  // namespace

HarnessResult ProcessHarness::run(int n, const Body& body,
                                  const Parent& parent) {
  DMX_CHECK(n >= 1 && n <= 64);
  // A child that dies mid-rendezvous closes its pipes; the broadcast
  // below must get EPIPE, not a fatal SIGPIPE (pipes have no
  // MSG_NOSIGNAL). Process-wide, but correct for every write this test
  // process performs.
  ::signal(SIGPIPE, SIG_IGN);

  void* region = ::mmap(nullptr, sizeof(SharedWitness),
                        PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  DMX_CHECK_MSG(region != MAP_FAILED,
                "mmap(MAP_SHARED): " << std::strerror(errno));
  auto* shared = new (region) SharedWitness();
  for (int r = 0; r < SharedWitness::kMaxResources; ++r) {
    shared->occupancy[r].store(0);
    shared->holder[r].store(kNilNode);
  }
  shared->violations.store(0);
  shared->entries.store(0);
  for (int s = 0; s < SharedWitness::kSlots; ++s) {
    shared->slots[s].store(0);
  }

  // Per-child pipes: up = child -> parent (its port), down = parent ->
  // child (the full port map).
  std::vector<int> up_read(static_cast<std::size_t>(n) + 1, -1);
  std::vector<int> down_write(static_cast<std::size_t>(n) + 1, -1);
  std::vector<pid_t> pids(static_cast<std::size_t>(n) + 1, -1);

  for (NodeId v = 1; v <= n; ++v) {
    int up[2];
    int down[2];
    DMX_CHECK(::pipe(up) == 0);
    DMX_CHECK(::pipe(down) == 0);
    const pid_t pid = ::fork();
    DMX_CHECK_MSG(pid >= 0, "fork: " << std::strerror(errno));
    if (pid == 0) {
      // Child: keep only this node's pipe ends (ours plus any inherited
      // from earlier siblings — close those so a sibling's EOF is real).
      ::close(up[0]);
      ::close(down[1]);
      for (NodeId w = 1; w < v; ++w) {
        if (up_read[static_cast<std::size_t>(w)] >= 0) {
          ::close(up_read[static_cast<std::size_t>(w)]);
        }
        if (down_write[static_cast<std::size_t>(w)] >= 0) {
          ::close(down_write[static_cast<std::size_t>(w)]);
        }
      }
      const int up_fd = up[1];
      const int down_fd = down[0];
      const Rendezvous rendezvous =
          [n, up_fd, down_fd](std::uint16_t my_port) {
            if (!write_exact(up_fd, &my_port, sizeof(my_port))) {
              throw std::runtime_error("rendezvous publish failed");
            }
            std::vector<std::uint16_t> ports(static_cast<std::size_t>(n) + 1,
                                             0);
            if (!read_exact(down_fd, ports.data() + 1,
                            static_cast<std::size_t>(n) *
                                sizeof(std::uint16_t))) {
              throw std::runtime_error(
                  "rendezvous collapsed (a sibling died)");
            }
            // A zero port means that sibling died before publishing;
            // failing here beats dialing a port that never existed (and
            // hanging out the mesh timeout).
            for (NodeId w = 1; w <= n; ++w) {
              if (ports[static_cast<std::size_t>(w)] == 0) {
                throw std::runtime_error(
                    "rendezvous collapsed (node " + std::to_string(w) +
                    " died before publishing its port)");
              }
            }
            return ports;
          };
      int code = 0;
      try {
        code = body(v, rendezvous, *shared);
      } catch (const std::exception& e) {
        ::fprintf(stderr, "node %d: %s\n", v, e.what());
        code = 70;  // EX_SOFTWARE
      }
      ::_exit(code);
    }
    ::close(up[1]);
    ::close(down[0]);
    up_read[static_cast<std::size_t>(v)] = up[0];
    down_write[static_cast<std::size_t>(v)] = down[1];
    pids[static_cast<std::size_t>(v)] = pid;
  }

  HarnessResult result;
  result.exit_codes.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<bool> reaped(static_cast<std::size_t>(n) + 1, false);

  // Collect every child's port, polling the pipe against child liveness:
  // a child killed by a signal before the rendezvous (its port write
  // never happened) is reaped right here with its 128+signo code instead
  // of the parent blocking on a pipe nobody will ever write. Its port
  // stays 0, which the sibling-side rendezvous treats as a collapse.
  std::vector<std::uint16_t> ports(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 1; v <= n; ++v) {
    const int fd = up_read[static_cast<std::size_t>(v)];
    while (true) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int pr = ::poll(&pfd, 1, 50);
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (pr > 0) {
        // Readable or hung up; read_exact reports EOF as false.
        std::uint16_t port = 0;
        if (read_exact(fd, &port, sizeof(port))) {
          ports[static_cast<std::size_t>(v)] = port;
        }
        break;
      }
      int status = 0;
      const pid_t w =
          ::waitpid(pids[static_cast<std::size_t>(v)], &status, WNOHANG);
      if (w == pids[static_cast<std::size_t>(v)]) {
        result.exit_codes[static_cast<std::size_t>(v)] =
            exit_code_of(status);
        reaped[static_cast<std::size_t>(v)] = true;
        break;
      }
    }
  }
  // Broadcast the map; a dead child's pipe yields EPIPE, ignored.
  for (NodeId v = 1; v <= n; ++v) {
    (void)write_exact(down_write[static_cast<std::size_t>(v)],
                      ports.data() + 1,
                      static_cast<std::size_t>(n) * sizeof(std::uint16_t));
  }

  if (parent) parent(pids, *shared);

  for (NodeId v = 1; v <= n; ++v) {
    if (!reaped[static_cast<std::size_t>(v)]) {
      int status = 0;
      const pid_t pid = pids[static_cast<std::size_t>(v)];
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      result.exit_codes[static_cast<std::size_t>(v)] = exit_code_of(status);
    }
    ::close(up_read[static_cast<std::size_t>(v)]);
    ::close(down_write[static_cast<std::size_t>(v)]);
  }

  for (int r = 0; r < SharedWitness::kMaxResources; ++r) {
    result.witness.occupancy[r] = shared->occupancy[r].load();
  }
  result.witness.violations = shared->violations.load();
  result.witness.entries = shared->entries.load();
  ::munmap(region, sizeof(SharedWitness));
  return result;
}

}  // namespace dmx::transport
