// Wire-level membership repair control messages.
//
// When a peer dies without GOODBYE, the elected regenerator (smallest
// live node, iff a strict majority survives — quorum::elect_regenerator)
// announces the repair with REPAIR: the fresh epoch and the compact
// survivor membership, as original node ids in ascending order. Every
// survivor fences its old world at the announced epoch and answers
// REPAIR-ACK carrying the highest epoch it has adopted; the winner
// installs the regenerated world — and thereby re-mints the token — only
// once every survivor acked the target epoch and no local client still
// holds the old-world critical section. An ack above the winner's own
// target tells a lagging winner to re-announce past it (a prior winner
// died mid-repair), which keeps epochs converging under repeated crashes.
//
// Both families ride the ordinary frame path (they are addressed,
// per-resource, epoch-stamped), but the space handles them directly on
// the loop thread instead of posting them to the protocol strand: they
// are ABOUT the world the strand runs, not traffic within it.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"
#include "net/wire_format.hpp"

namespace dmx::transport {

class RepairMessage final : public net::Message {
 public:
  /// `epoch` is the target epoch being announced, `winner` the announcing
  /// regenerator, `members` the survivor set as original node ids in
  /// strictly ascending order (the compact ranks are implied by position).
  RepairMessage(Epoch epoch, NodeId winner, std::vector<NodeId> members)
      : net::Message(interned_kind()), epoch_(epoch), winner_(winner),
        members_(std::move(members)) {}

  Epoch epoch() const { return epoch_; }
  NodeId winner() const { return winner_; }
  const std::vector<NodeId>& members() const { return members_; }

  std::size_t payload_bytes() const override {
    return 2 * sizeof(std::uint32_t) +
           (members_.size() + 1) * sizeof(NodeId);
  }
  std::string describe() const override {
    std::string out = "REPAIR(e=" + std::to_string(epoch_) +
                      ",w=" + std::to_string(winner_) + ",[";
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(members_[i]);
    }
    return out + "])";
  }
  net::MessagePtr clone() const override {
    return std::make_unique<RepairMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind = net::MessageKind::of("fault.repair");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter w(out);
    w.u32(epoch_);
    w.i32(winner_);
    w.u32(static_cast<std::uint32_t>(members_.size()));
    for (const NodeId v : members_) w.i32(v);
  }

  static net::MessageKind interned_kind() {
    static const net::MessageKind kind = net::MessageKind::of("REPAIR");
    return kind;
  }

 private:
  Epoch epoch_;
  NodeId winner_;
  std::vector<NodeId> members_;
};

class RepairAckMessage final : public net::Message {
 public:
  /// `epoch` is the highest target epoch the acker has adopted — equal to
  /// the announced epoch for a plain ack, above it when the acker is
  /// fenced past the announcing (lagging) winner.
  explicit RepairAckMessage(Epoch epoch)
      : net::Message(interned_kind()), epoch_(epoch) {}

  Epoch epoch() const { return epoch_; }

  std::size_t payload_bytes() const override { return sizeof(std::uint32_t); }
  std::string describe() const override {
    return "REPAIR-ACK(e=" + std::to_string(epoch_) + ")";
  }
  net::MessagePtr clone() const override {
    return std::make_unique<RepairAckMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind =
        net::MessageKind::of("fault.repair_ack");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter w(out);
    w.u32(epoch_);
  }

  static net::MessageKind interned_kind() {
    static const net::MessageKind kind = net::MessageKind::of("REPAIR-ACK");
    return kind;
  }

 private:
  Epoch epoch_;
};

}  // namespace dmx::transport
