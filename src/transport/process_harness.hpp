// Multi-process test harness: fork one real process per node, rendezvous
// their loopback ports through pipes, and witness cross-process mutual
// exclusion through a MAP_SHARED memory region.
//
// Flow: run(n, body) forks n children (node ids 1..n). Each child calls
// `body(self, rendezvous, shared)`; the body binds its own listening
// socket, then calls rendezvous(my_port), which publishes the port to the
// parent and blocks until the parent has collected all n ports and
// broadcast the full map back. With the map in hand the body dials its
// lower-numbered peers, runs its workload, and returns an exit code; the
// harness _exit()s with it (no atexit/dtor replay of the parent's state).
//
// The shared region is the cross-process analogue of the threaded
// substrate's occupancy witness: per-resource entry/exit counters bumped
// with std::atomic (address-free on this platform), so "two processes
// inside one critical section" is observable no matter which process's
// asserts run. The parent reads the region after all children exit.
//
// Children that die before publishing a port (crash, DMX_CHECK) surface
// as a failed rendezvous in their siblings and a nonzero exit here; the
// parent never hangs on a dead child's pipe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace dmx::transport {

/// Cross-process witness state, placed in a MAP_SHARED region.
struct SharedWitness {
  static constexpr int kMaxResources = 64;
  /// Nodes currently inside resource r's critical section.
  std::atomic<int> occupancy[kMaxResources];
  /// Exclusivity violations observed by any process (must stay 0).
  std::atomic<int> violations;
  /// Total critical-section entries across all processes.
  std::atomic<std::uint64_t> entries;

  /// Entry bookkeeping: call with the resource just locked.
  void enter(ResourceId r) {
    if (occupancy[r].fetch_add(1, std::memory_order_acq_rel) != 0) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    entries.fetch_add(1, std::memory_order_relaxed);
  }
  /// Exit bookkeeping: call before unlocking.
  void exit(ResourceId r) {
    occupancy[r].fetch_sub(1, std::memory_order_acq_rel);
  }
};

/// Plain-value copy of the shared witness, taken after the children exit.
struct WitnessSnapshot {
  int occupancy[SharedWitness::kMaxResources] = {};
  int violations = 0;
  std::uint64_t entries = 0;
};

struct HarnessResult {
  /// Exit code per node, indexed by node id (index 0 unused). A child
  /// killed by a signal reports 128 + signo.
  std::vector<int> exit_codes;
  /// Snapshot of the shared witness after every child exited.
  WitnessSnapshot witness;

  bool all_ok() const {
    for (std::size_t v = 1; v < exit_codes.size(); ++v) {
      if (exit_codes[v] != 0) return false;
    }
    return true;
  }
};

class ProcessHarness {
 public:
  /// Publishes this node's port; returns every node's port indexed by
  /// node id (index 0 unused). Blocks until all siblings published.
  /// Throws std::runtime_error if the rendezvous collapses (a sibling
  /// died first).
  using Rendezvous =
      std::function<std::vector<std::uint16_t>(std::uint16_t my_port)>;

  /// Child body: runs in a forked process as node `self`. Its return
  /// value becomes the process exit code (0 = success).
  using Body = std::function<int(NodeId self, const Rendezvous& rendezvous,
                                 SharedWitness& shared)>;

  /// Forks `n` children, runs `body` in each, waits for all of them.
  static HarnessResult run(int n, const Body& body);
};

}  // namespace dmx::transport
