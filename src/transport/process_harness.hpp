// Multi-process test harness: fork one real process per node, rendezvous
// their loopback ports through pipes, and witness cross-process mutual
// exclusion through a MAP_SHARED memory region.
//
// Flow: run(n, body) forks n children (node ids 1..n). Each child calls
// `body(self, rendezvous, shared)`; the body binds its own listening
// socket, then calls rendezvous(my_port), which publishes the port to the
// parent and blocks until the parent has collected all n ports and
// broadcast the full map back. With the map in hand the body dials its
// lower-numbered peers, runs its workload, and returns an exit code; the
// harness _exit()s with it (no atexit/dtor replay of the parent's state).
//
// The shared region is the cross-process analogue of the threaded
// substrate's occupancy witness: per-resource entry/exit counters bumped
// with std::atomic (address-free on this platform), so "two processes
// inside one critical section" is observable no matter which process's
// asserts run. It also records WHICH node holds each resource, so a
// repair can retire a SIGKILLed holder's occupancy (abandon), and offers
// a few raw slots tests use as cross-process signal flags. The parent
// reads the region after all children exit.
//
// Children that die before publishing a port (crash, SIGKILL, DMX_CHECK)
// are detected by polling the pipe against child liveness: the parent
// records their 128+signo exit without blocking, and the zero port in the
// broadcast map makes every sibling's rendezvous throw instead of dialing
// a port that never existed.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace dmx::transport {

/// Cross-process witness state, placed in a MAP_SHARED region.
struct SharedWitness {
  static constexpr int kMaxResources = 64;
  static constexpr int kSlots = 16;
  /// Nodes currently inside resource r's critical section.
  std::atomic<int> occupancy[kMaxResources];
  /// Which node holds resource r (kNilNode = nobody); lets a repair
  /// retire a holder that died inside its CS.
  std::atomic<NodeId> holder[kMaxResources];
  /// Exclusivity violations observed by any process (must stay 0).
  std::atomic<int> violations;
  /// Total critical-section entries across all processes.
  std::atomic<std::uint64_t> entries;
  /// Raw cross-process coordination slots for tests (phase flags,
  /// barriers); the harness only zeroes them.
  std::atomic<int> slots[kSlots];

  /// Entry bookkeeping: call with the resource just locked, as `self`.
  void enter(ResourceId r, NodeId self) {
    if (occupancy[r].fetch_add(1, std::memory_order_acq_rel) != 0) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    holder[r].store(self, std::memory_order_release);
    entries.fetch_add(1, std::memory_order_relaxed);
  }
  /// Exit bookkeeping: call before unlocking.
  void exit(ResourceId r) {
    holder[r].store(kNilNode, std::memory_order_release);
    occupancy[r].fetch_sub(1, std::memory_order_acq_rel);
  }
  /// Retires `victim`'s occupancy of any resource it died holding: the
  /// repair-winner's on_repair hook calls this BEFORE the regenerated
  /// world can grant, so a survivor's re-entry meets a clean witness. The
  /// compare-exchange keeps it idempotent and safe against the victim
  /// having already exited.
  void abandon(NodeId victim) {
    for (int r = 0; r < kMaxResources; ++r) {
      NodeId expected = victim;
      if (holder[r].compare_exchange_strong(expected, kNilNode,
                                            std::memory_order_acq_rel)) {
        occupancy[r].fetch_sub(1, std::memory_order_acq_rel);
      }
    }
  }
};

/// Plain-value copy of the shared witness, taken after the children exit.
struct WitnessSnapshot {
  int occupancy[SharedWitness::kMaxResources] = {};
  int violations = 0;
  std::uint64_t entries = 0;
};

struct HarnessResult {
  /// Exit code per node, indexed by node id (index 0 unused). A child
  /// killed by a signal reports 128 + signo.
  std::vector<int> exit_codes;
  /// Snapshot of the shared witness after every child exited.
  WitnessSnapshot witness;

  bool all_ok() const {
    for (std::size_t v = 1; v < exit_codes.size(); ++v) {
      if (exit_codes[v] != 0) return false;
    }
    return true;
  }
};

class ProcessHarness {
 public:
  /// Publishes this node's port; returns every node's port indexed by
  /// node id (index 0 unused). Blocks until all siblings published.
  /// Throws std::runtime_error if the rendezvous collapses (a sibling
  /// died before publishing its port).
  using Rendezvous =
      std::function<std::vector<std::uint16_t>(std::uint16_t my_port)>;

  /// Child body: runs in a forked process as node `self`. Its return
  /// value becomes the process exit code (0 = success).
  using Body = std::function<int(NodeId self, const Rendezvous& rendezvous,
                                 SharedWitness& shared)>;

  /// Parent-side hook, run after the port broadcast while the children
  /// are working: fault injection (kill a child by pid) and shared-slot
  /// choreography live here. `pids` is indexed by node id (index 0
  /// unused).
  using Parent =
      std::function<void(const std::vector<pid_t>& pids,
                         SharedWitness& shared)>;

  /// Forks `n` children, runs `body` in each, waits for all of them.
  /// `parent`, if given, runs in the parent between broadcast and reap.
  static HarnessResult run(int n, const Body& body,
                           const Parent& parent = nullptr);
};

}  // namespace dmx::transport
