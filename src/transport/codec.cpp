#include "transport/codec.hpp"

#include <array>
#include <mutex>
#include <vector>

#include "baselines/carvalho_roucairol.hpp"
#include "baselines/central.hpp"
#include "baselines/lamport.hpp"
#include "baselines/maekawa.hpp"
#include "baselines/raymond.hpp"
#include "baselines/ricart_agrawala.hpp"
#include "baselines/singhal.hpp"
#include "baselines/suzuki_kasami.hpp"
#include "common/check.hpp"
#include "core/messages.hpp"
#include "transport/repair_messages.hpp"

namespace dmx::transport {

namespace {

using baselines::CentralMessage;
using baselines::CrMessage;
using baselines::LamportMessage;
using baselines::MaekawaMessage;
using baselines::RaMessage;
using baselines::RaymondMessage;
using baselines::SinghalRequestMessage;
using baselines::SinghalState;
using baselines::SinghalToken;
using baselines::SinghalTokenMessage;
using baselines::SkRequestMessage;
using baselines::SkToken;
using baselines::SkTokenMessage;

/// Reads an enum discriminant and rejects values outside [0, limit).
std::uint8_t enum_field(net::WireReader& r, std::uint8_t limit,
                        const char* what) {
  const std::uint8_t value = r.u8();
  if (value >= limit) {
    throw net::WireError(std::string("bad ") + what + " discriminant " +
                         std::to_string(value));
  }
  return value;
}

SinghalState singhal_state(std::uint8_t raw) {
  switch (static_cast<SinghalState>(raw)) {
    case SinghalState::kRequesting:
    case SinghalState::kExecuting:
    case SinghalState::kHolding:
    case SinghalState::kNone:
      return static_cast<SinghalState>(raw);
  }
  throw net::WireError("bad Singhal state byte " + std::to_string(raw));
}

// --- Family decoders (field order mirrors each encode_binary) ---------------

net::MessagePtr decode_neilsen_request(net::WireReader& r) {
  const NodeId hop = r.i32();
  const NodeId origin = r.i32();
  return std::make_unique<core::RequestMessage>(hop, origin);
}

net::MessagePtr decode_neilsen_privilege(net::WireReader&) {
  return std::make_unique<core::PrivilegeMessage>();
}

net::MessagePtr decode_neilsen_initialize(net::WireReader&) {
  return std::make_unique<core::InitializeMessage>();
}

net::MessagePtr decode_raymond(net::WireReader& r) {
  const auto type =
      static_cast<RaymondMessage::Type>(enum_field(r, 2, "Raymond type"));
  return std::make_unique<RaymondMessage>(type);
}

net::MessagePtr decode_sk_request(net::WireReader& r) {
  return std::make_unique<SkRequestMessage>(r.i32());
}

net::MessagePtr decode_sk_token(net::WireReader& r) {
  SkToken token;
  const std::uint32_t ln_size = r.count(sizeof(std::int32_t));
  token.last_granted.reserve(ln_size);
  for (std::uint32_t i = 0; i < ln_size; ++i) {
    token.last_granted.push_back(r.i32());
  }
  const std::uint32_t queue_size = r.count(sizeof(std::int32_t));
  for (std::uint32_t i = 0; i < queue_size; ++i) {
    token.queue.push_back(r.i32());
  }
  return std::make_unique<SkTokenMessage>(std::move(token));
}

net::MessagePtr decode_singhal_request(net::WireReader& r) {
  const NodeId origin = r.i32();
  const int sequence = r.i32();
  return std::make_unique<SinghalRequestMessage>(origin, sequence);
}

net::MessagePtr decode_singhal_token(net::WireReader& r) {
  SinghalToken token;
  const std::uint32_t tsv_size = r.count(sizeof(std::uint8_t));
  token.tsv.reserve(tsv_size);
  for (std::uint32_t i = 0; i < tsv_size; ++i) {
    token.tsv.push_back(singhal_state(r.u8()));
  }
  const std::uint32_t tsn_size = r.count(sizeof(std::int32_t));
  token.tsn.reserve(tsn_size);
  for (std::uint32_t i = 0; i < tsn_size; ++i) {
    token.tsn.push_back(r.i32());
  }
  return std::make_unique<SinghalTokenMessage>(std::move(token));
}

net::MessagePtr decode_ra(net::WireReader& r) {
  const auto type = static_cast<RaMessage::Type>(enum_field(r, 2, "RA type"));
  return std::make_unique<RaMessage>(type, r.i32());
}

net::MessagePtr decode_cr(net::WireReader& r) {
  const auto type = static_cast<CrMessage::Type>(enum_field(r, 2, "CR type"));
  return std::make_unique<CrMessage>(type, r.i32());
}

net::MessagePtr decode_lamport(net::WireReader& r) {
  const auto type =
      static_cast<LamportMessage::Type>(enum_field(r, 3, "Lamport type"));
  return std::make_unique<LamportMessage>(type, r.i32());
}

net::MessagePtr decode_maekawa(net::WireReader& r) {
  const auto type =
      static_cast<MaekawaMessage::Type>(enum_field(r, 6, "Maekawa type"));
  return std::make_unique<MaekawaMessage>(type, r.i32());
}

net::MessagePtr decode_central(net::WireReader& r) {
  const auto type =
      static_cast<CentralMessage::Type>(enum_field(r, 3, "Central type"));
  return std::make_unique<CentralMessage>(type);
}

net::MessagePtr decode_repair(net::WireReader& r) {
  const Epoch epoch = r.u32();
  const NodeId winner = r.i32();
  const std::uint32_t count = r.count(sizeof(NodeId));
  std::vector<NodeId> members;
  members.reserve(count);
  NodeId previous = kNilNode;
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId v = r.i32();
    // Strictly ascending positive ids — anything else is a corrupt frame,
    // not a membership the repair protocol could have produced.
    if (v <= previous) {
      throw net::WireError("repair membership not strictly ascending");
    }
    members.push_back(v);
    previous = v;
  }
  return std::make_unique<RepairMessage>(epoch, winner, std::move(members));
}

net::MessagePtr decode_repair_ack(net::WireReader& r) {
  return std::make_unique<RepairAckMessage>(r.u32());
}

struct Registry {
  struct Entry {
    net::MessageKind kind;
    Codec::Decoder decoder = nullptr;
  };

  /// wire id (registration index) -> entry.
  std::vector<Entry> by_wire_id;
  /// dense MessageKind id -> wire id + 1 (0 = unregistered). Sized to the
  /// intern cap so encode-side lookup is a single bounds-free probe.
  std::array<std::uint32_t, net::MessageKind::kMaxKinds> wire_id_by_kind{};

  void add(net::MessageKind kind, Codec::Decoder decoder) {
    DMX_CHECK_MSG(wire_id_by_kind[kind.id()] == 0,
                  "codec kind " << kind.name() << " registered twice");
    by_wire_id.push_back({kind, decoder});
    wire_id_by_kind[kind.id()] =
        static_cast<std::uint32_t>(by_wire_id.size());
  }

  Registry() {
    // Registration order IS the wire protocol: append only, never
    // reorder, so wire ids stay meaningful across build revisions that
    // add families.
    add(net::MessageKind::of("neilsen.request"), decode_neilsen_request);
    add(net::MessageKind::of("neilsen.privilege"), decode_neilsen_privilege);
    add(net::MessageKind::of("neilsen.initialize"),
        decode_neilsen_initialize);
    add(net::MessageKind::of("raymond.msg"), decode_raymond);
    add(net::MessageKind::of("sk.request"), decode_sk_request);
    add(net::MessageKind::of("sk.token"), decode_sk_token);
    add(net::MessageKind::of("singhal.request"), decode_singhal_request);
    add(net::MessageKind::of("singhal.token"), decode_singhal_token);
    add(net::MessageKind::of("ra.msg"), decode_ra);
    add(net::MessageKind::of("cr.msg"), decode_cr);
    add(net::MessageKind::of("lamport.msg"), decode_lamport);
    add(net::MessageKind::of("maekawa.msg"), decode_maekawa);
    add(net::MessageKind::of("central.msg"), decode_central);
    add(net::MessageKind::of("fault.repair"), decode_repair);
    add(net::MessageKind::of("fault.repair_ack"), decode_repair_ack);
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

void Codec::ensure_registered() { registry(); }

std::size_t Codec::family_count() { return registry().by_wire_id.size(); }

std::uint32_t Codec::wire_id_of(const net::Message& message) {
  const net::MessageKind kind = message.wire_kind();
  if (!kind.valid()) {
    throw net::WireError("message kind " + std::string(message.kind()) +
                         " has no wire codec (wire_kind not overridden)");
  }
  const std::uint32_t slot = registry().wire_id_by_kind[kind.id()];
  if (slot == 0) {
    throw net::WireError("codec kind " + std::string(kind.name()) +
                         " not registered");
  }
  return slot - 1;
}

net::MessageKind Codec::kind_of(std::uint32_t wire_id) {
  Registry& reg = registry();
  DMX_CHECK(wire_id < reg.by_wire_id.size());
  return reg.by_wire_id[wire_id].kind;
}

net::MessagePtr Codec::decode(std::uint32_t wire_id, net::WireReader& r) {
  Registry& reg = registry();
  if (wire_id >= reg.by_wire_id.size()) {
    throw net::WireError("unknown wire id " + std::to_string(wire_id));
  }
  net::MessagePtr message = reg.by_wire_id[wire_id].decoder(r);
  if (!r.done()) {
    throw net::WireError(std::to_string(r.remaining()) +
                         " trailing bytes after " +
                         std::string(reg.by_wire_id[wire_id].kind.name()) +
                         " payload");
  }
  return message;
}

void Codec::encode_frame(std::string& out, Epoch epoch, ResourceId resource,
                         NodeId from, NodeId to, const net::Message& message) {
  const std::uint32_t wire_id = wire_id_of(message);
  const std::size_t length_at = out.size();
  net::WireWriter w(out);
  w.u32(0);  // patched below
  w.u32(wire_id);
  w.u32(epoch);
  w.i32(resource);
  w.i32(from);
  w.i32(to);
  message.encode_binary(out);
  const std::size_t body = out.size() - length_at - 4;
  DMX_CHECK_MSG(body <= kMaxFrameBytes, "frame body of "
                                            << body << " bytes exceeds cap "
                                            << kMaxFrameBytes);
  out[length_at + 0] = static_cast<char>(body & 0xff);
  out[length_at + 1] = static_cast<char>((body >> 8) & 0xff);
  out[length_at + 2] = static_cast<char>((body >> 16) & 0xff);
  out[length_at + 3] = static_cast<char>((body >> 24) & 0xff);
}

void Codec::encode_control_frame(std::string& out, std::uint32_t wire_id,
                                 NodeId from) {
  DMX_CHECK(wire_id >= kControlWireIdBase);
  net::WireWriter w(out);
  w.u32(5 * 4);  // fixed header body, no payload
  w.u32(wire_id);
  w.u32(0);           // epoch
  w.i32(0);           // resource
  w.i32(from);
  w.i32(kNilNode);    // to: filled by routing, unused for control
}

FrameHeader Codec::decode_header(net::WireReader& r) {
  FrameHeader header;
  header.wire_id = r.u32();
  header.epoch = r.u32();
  header.resource = r.i32();
  header.from = r.i32();
  header.to = r.i32();
  return header;
}

}  // namespace dmx::transport
