// Multi-resource lock service with one node per PROCESS over loopback TCP.
//
// The distributed sibling of service::ThreadedLockSpace: the same
// per-resource strand-confined protocol state machines, the same
// client-gate lock()/unlock() bridge, the same consistent-hash Directory
// placement — but each process runs exactly ONE node, and protocol
// messages cross real sockets as codec frames instead of strand posts.
// Protocol code is unchanged (the substitution argument of DESIGN.md,
// extended to a third substrate): a MutexNode cannot tell whether its
// Context::send lands in a sibling strand or on the wire.
//
// Wiring: construct, listen() to learn this node's port, exchange ports
// out of band (the fork harness in process_harness.hpp uses pipes),
// connect() to every LOWER-numbered peer, start(), then
// wait_connected() to rendezvous the full mesh before first use.
//
// Fault surface: a peer socket that dies without the GOODBYE handshake
// is a crashed node. With recovery enabled (the default), the space runs
// the wire membership-repair protocol: every survivor observes the same
// EOF, quorum::elect_regenerator picks the smallest live node, and the
// winner announces a fresh epoch plus the compact survivor
// fault::Membership with a REPAIR frame. Survivors fence their old world
// at the announced epoch (stale-epoch frames are dropped at decode,
// stale grants are discarded by the client gate) and answer REPAIR-ACK;
// the winner installs the regenerated world — re-minting the token —
// only after every survivor has acked and no local client still holds
// the old critical section (a holder's unlock completes the deferred
// install, the wire analogue of the threaded substrate's pending
// repair). Repaired resources grant kOk again. Without a live strict
// majority — or with recovery disabled — every resource is conservatively
// marked unavailable and waiters drain with LockError::kUnavailable.
//
// Exclusivity witnessing is per-process here (a node cannot observe
// another process's occupancy); the multi-process harness shares an
// occupancy counter via a MAP_SHARED region to restore the cross-node
// witness in tests.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "exec/executor.hpp"
#include "fault/membership.hpp"
#include "net/message_kind.hpp"
#include "proto/algorithm.hpp"
#include "service/directory.hpp"
#include "service/lease.hpp"
#include "service/threaded_lock_space.hpp"  // service::LockError
#include "telemetry/telemetry.hpp"
#include "topology/tree.hpp"
#include "transport/event_loop.hpp"

namespace dmx::transport {

using service::LockError;

class RepairMessage;
class RepairAckMessage;

struct DistributedLockSpaceConfig {
  /// This process's node id (1..n).
  NodeId self = kNilNode;
  int n = 0;
  proto::Algorithm algorithm;
  std::vector<std::string> resources;
  /// Shared logical tree for path-forwarding algorithms; defaults to a
  /// star centered on node 1 when required and absent (must be identical
  /// in every process — it is derived from config, so it is).
  std::optional<topology::Tree> tree;
  int directory_vnodes = 16;
  std::uint64_t seed = 1;
  /// Worker threads in the strand pool; 1 is plenty for one node.
  int workers = 1;
  int spin = 64;
  /// Run the wire membership-repair protocol after a peer crash. When
  /// false, any crash conservatively marks every resource unavailable
  /// (the pre-repair transport behavior).
  bool recovery_enabled = true;
  /// Invoked on the repair WINNER, once per installed epoch and resource,
  /// after every survivor has fenced (acked) but before the regenerated
  /// world can grant. The test harness hooks this to retire a SIGKILLed
  /// holder's shared-memory occupancy before any survivor re-enters.
  /// Runs on the event-loop thread or an unlocking client thread; keep it
  /// brief and non-blocking.
  std::function<void(Epoch, const fault::Membership&)> on_repair;
  /// Local grant-chaining lease: how many consecutive releases may hand
  /// the CS straight to a co-located waiter (one condvar wake, zero wire
  /// frames) before the token must be offered back to the protocol so
  /// remote requesters keep bounded waiting.
  service::LeaseConfig lease;
};

class DistributedLockSpace {
 public:
  explicit DistributedLockSpace(DistributedLockSpaceConfig config);
  ~DistributedLockSpace();

  DistributedLockSpace(const DistributedLockSpace&) = delete;
  DistributedLockSpace& operator=(const DistributedLockSpace&) = delete;

  // --- Mesh bring-up (in order) ------------------------------------------

  /// Binds this node's loopback listening socket; returns the port.
  std::uint16_t listen();
  /// Dials peer `peer` (its id must be < self()). Call for every lower id.
  void connect(NodeId peer, std::uint16_t port);
  /// Starts the event loop; higher-numbered peers dial us.
  void start();
  /// Blocks until all n-1 peers are connected and identified.
  bool wait_connected(std::chrono::milliseconds timeout);
  /// Orderly departure: GOODBYE to every peer, drain, stop loop and pool.
  /// Idempotent; the destructor calls it.
  ///
  /// Departure is COLLECTIVE among the nodes still alive: the protocol
  /// state machines route through every live node, so a node that leaves
  /// while a sibling still wants locks strands that sibling's requests
  /// (GOODBYE suppresses the crash path by design — it must not poison a
  /// whole run). Quiesce the survivors (e.g. the shared-memory barrier
  /// the test harness uses) before the first shutdown(); crashed nodes
  /// need no quiescing — repair already cut them out of the membership.
  void shutdown();

  // --- Introspection ------------------------------------------------------

  NodeId self() const { return config_.self; }
  int nodes() const { return config_.n; }
  int resource_count() const { return directory_.resource_count(); }
  const service::Directory& directory() const { return directory_; }
  ResourceId lookup(std::string_view name) const {
    return directory_.lookup(name);
  }
  const std::string& name(ResourceId r) const { return directory_.name(r); }
  NodeId home_node(ResourceId r) const { return directory_.home_node(r); }
  /// Current fence epoch of resource `r` (0 until the first repair).
  Epoch epoch(ResourceId r) const;

  // --- Client API (this process's node only) ------------------------------

  /// Blocks until this node holds resource `r`'s critical section.
  void lock(ResourceId r);
  /// Bounded-wait lock; kUnavailable once the live majority is gone.
  LockError try_lock_for(ResourceId r, std::chrono::milliseconds timeout);
  void unlock(ResourceId r);

  /// TEST HOOK: bumps resource `r`'s fence epoch without installing a
  /// world behind it, then wakes parked clients — the repair-wakeup
  /// stimulus in isolation. Grants minted before the bump become stale
  /// and no fresh world will ever grant, so the resource is dead for
  /// granting afterwards; use only to pin client-gate deadline behavior.
  void debug_fence_epoch(ResourceId r);

  std::uint64_t entries(ResourceId r) const;
  std::uint64_t total_entries() const;
  const EventLoopStats& transport_stats() const { return loop_->stats(); }
  /// Protocol frames dropped at decode because their epoch predated the
  /// resource's fence (old-world traffic after a repair).
  std::uint64_t stale_frames_dropped() const {
    return stale_frames_.load(std::memory_order_relaxed);
  }
  /// Releases that handed the CS straight to a co-located waiter without
  /// a wire round, and lease windows that closed with local waiters
  /// still queued (the bounded-waiting cap at work).
  std::uint64_t chained_grants() const {
    return chained_grants_.load(std::memory_order_relaxed);
  }
  std::uint64_t lease_yields() const {
    return lease_yields_.load(std::memory_order_relaxed);
  }

  /// First protocol, exclusivity, or transport error observed, if any.
  std::optional<std::string> first_error() const;

  /// Merged runtime metrics for this process: every telemetry metric plus
  /// the executor counters (exec.*) and the event-loop counters (wire.*)
  /// folded in.
  telemetry::MetricsSnapshot telemetry_snapshot() const;

 private:
  struct ResourceNode;

  /// A protocol frame parked by the epoch fence: its epoch is newer than
  /// the installed world (the REPAIR announcing that epoch has not been
  /// processed, or the install is still awaiting acks). Drained — behind
  /// the strand's reset task — once the matching world installs.
  struct QueuedFrame {
    Epoch epoch = 0;
    NodeId from = kNilNode;
    net::MessagePtr message;
  };

  /// Per-resource repair controller state; `mutex` guards every field.
  /// Lock order: RepairState::mutex before ResourceNode::client_mutex,
  /// never the reverse.
  struct RepairState {
    std::mutex mutex;
    /// Highest epoch announced (and fenced at) for this resource; always
    /// mirrored into resource_epoch_ while `mutex` is held.
    Epoch target = 0;
    /// Epoch whose world reset has been posted to the strand.
    Epoch installed = 0;
    /// Regenerator of the target epoch.
    NodeId winner = kNilNode;
    /// Survivor membership of the target epoch (null before any repair).
    std::shared_ptr<const fault::Membership> membership;
    /// Install (and, on a survivor, the ack) waits for the local holder's
    /// unlock — the old-world critical section finishes undisturbed.
    bool await_unlock = false;
    /// Winner only: which original ids have acked the target epoch.
    std::vector<std::uint8_t> acks;
    int acks_missing = 0;
    std::vector<QueuedFrame> queued;
    /// Trees built for repaired worlds stay alive as long as their
    /// protocol instances might dereference them.
    std::vector<std::unique_ptr<topology::Tree>> trees;
    /// telemetry::now_ns() when this repair was first observed (0 = no
    /// repair in flight); spans deferrals, so fault.repair_ns measures
    /// what a waiting client experienced.
    std::uint64_t repair_started_ns = 0;
  };

  /// Per-resource interned metric ids, resolved once at construction.
  struct ResourceTelemetry {
    telemetry::HistogramId wait_ns;
    telemetry::CounterId ok;
    telemetry::CounterId timeouts;
    telemetry::CounterId unavailable;
  };

  ResourceNode& rn(ResourceId r);
  RepairState& repair(ResourceId r);
  /// Context::send target: frames the message (stamped with the sending
  /// world's epoch) and ships it to `to`.
  void route(ResourceId r, NodeId to, net::MessagePtr message, Epoch tag);
  void on_frame(const FrameHeader& header, net::MessagePtr message);
  void on_peer_down(NodeId peer);
  /// REPAIR from the elected winner: fence at the announced epoch, then
  /// install + ack (or defer both to the local holder's unlock).
  void handle_repair(const FrameHeader& header, const RepairMessage& message);
  /// REPAIR-ACK at the winner: count it, install once all survivors
  /// fenced; an ack above our target supersedes a lagging announcement.
  void handle_repair_ack(const FrameHeader& header,
                         const RepairAckMessage& message);
  /// Winner side: bump the fence past `at_least`, announce REPAIR to
  /// every survivor, then try to install. Caller holds `rs.mutex`.
  void start_repair_locked(ResourceId r, RepairState& rs, Epoch at_least);
  /// Winner side: install iff every ack arrived and no local client holds
  /// the old-world CS. Caller holds `rs.mutex`.
  void try_install_locked(ResourceId r, RepairState& rs);
  /// Posts the regenerated world (reset, re-request, parked-frame drain)
  /// to the strand and marks the target epoch installed. Caller holds
  /// `rs.mutex`.
  void install_world_locked(ResourceId r, RepairState& rs);
  void mark_unavailable(ResourceId r);
  /// Wakes resource `r`'s parked clients (paired with their predicate
  /// check under client_mutex).
  void wake_clients(ResourceId r);
  void record_error(const std::string& what);
  /// Records the error and releases every parked client thread.
  void fail(const std::string& what);
  LockError wait_for_grant(ResourceId r,
                           const std::chrono::milliseconds* timeout);

  DistributedLockSpaceConfig config_;
  service::Directory directory_;
  exec::Executor executor_;
  std::unique_ptr<EventLoop> loop_;
  /// This process's state machine per resource, indexed by ResourceId.
  std::vector<std::unique_ptr<ResourceNode>> nodes_;
  std::vector<std::unique_ptr<RepairState>> repair_;  // by ResourceId
  std::unique_ptr<std::atomic<std::uint64_t>[]> entries_;
  /// Local-view occupancy witness (complemented by the shared-memory
  /// witness in the multi-process harness).
  std::unique_ptr<std::atomic<int>[]> occupancy_;
  /// Per-resource fence epoch, readable off the repair mutex (client
  /// grant revalidation and frame admission read it lock-free).
  std::unique_ptr<std::atomic<Epoch>[]> resource_epoch_;
  /// Per-resource: no live majority (or recovery disabled) — the
  /// resource can never grant again.
  std::unique_ptr<std::atomic<bool>[]> unavailable_;
  /// Socket-liveness vector, by original node id; self is never down.
  std::unique_ptr<std::atomic<bool>[]> peer_down_;
  std::atomic<std::uint64_t> stale_frames_{0};
  std::atomic<std::uint64_t> chained_grants_{0};
  std::atomic<std::uint64_t> lease_yields_{0};
  std::atomic<bool> failed_{false};
  std::atomic<bool> shut_down_{false};

  mutable std::mutex error_mutex_;
  std::optional<std::string> first_error_;

  std::vector<ResourceTelemetry> resource_telemetry_;  // by ResourceId
  telemetry::HistogramId hold_hist_;
  telemetry::HistogramId chain_hist_;
  telemetry::HistogramId repair_hist_;
  /// Interned kinds of token-carrying messages (one algorithm per space),
  /// for flight-recording token forwards in route().
  std::vector<net::MessageKind> token_kinds_;
};

/// RAII holder mirroring service::ScopedLock.
class DistributedScopedLock {
 public:
  DistributedScopedLock(DistributedLockSpace& space, ResourceId r)
      : space_(&space), resource_(r) {
    space_->lock(resource_);
  }
  ~DistributedScopedLock() {
    if (space_ != nullptr) space_->unlock(resource_);
  }
  DistributedScopedLock(const DistributedScopedLock&) = delete;
  DistributedScopedLock& operator=(const DistributedScopedLock&) = delete;

 private:
  DistributedLockSpace* space_;
  ResourceId resource_;
};

}  // namespace dmx::transport
