// Multi-resource lock service with one node per PROCESS over loopback TCP.
//
// The distributed sibling of service::ThreadedLockSpace: the same
// per-resource strand-confined protocol state machines, the same
// client-gate lock()/unlock() bridge, the same consistent-hash Directory
// placement — but each process runs exactly ONE node, and protocol
// messages cross real sockets as codec frames instead of strand posts.
// Protocol code is unchanged (the substitution argument of DESIGN.md,
// extended to a third substrate): a MutexNode cannot tell whether its
// Context::send lands in a sibling strand or on the wire.
//
// Wiring: construct, listen() to learn this node's port, exchange ports
// out of band (the fork harness in process_harness.hpp uses pipes),
// connect() to every LOWER-numbered peer, start(), then
// wait_connected() to rendezvous the full mesh before first use.
//
// Fault surface: a peer socket that dies without the GOODBYE handshake
// is a crashed node. Without a membership/repair protocol over the wire
// (future PR), no resource can be declared safe once any participant is
// gone, so the space conservatively marks every resource unavailable and
// wakes all waiters with LockError::kUnavailable — the transport
// analogue of the threaded substrate's recovery-disabled crash path.
//
// Exclusivity witnessing is per-process here (a node cannot observe
// another process's occupancy); the multi-process harness shares an
// occupancy counter via a MAP_SHARED region to restore the cross-node
// witness in tests.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "exec/executor.hpp"
#include "net/message_kind.hpp"
#include "proto/algorithm.hpp"
#include "service/directory.hpp"
#include "service/threaded_lock_space.hpp"  // service::LockError
#include "telemetry/telemetry.hpp"
#include "topology/tree.hpp"
#include "transport/event_loop.hpp"

namespace dmx::transport {

using service::LockError;

struct DistributedLockSpaceConfig {
  /// This process's node id (1..n).
  NodeId self = kNilNode;
  int n = 0;
  proto::Algorithm algorithm;
  std::vector<std::string> resources;
  /// Shared logical tree for path-forwarding algorithms; defaults to a
  /// star centered on node 1 when required and absent (must be identical
  /// in every process — it is derived from config, so it is).
  std::optional<topology::Tree> tree;
  int directory_vnodes = 16;
  std::uint64_t seed = 1;
  /// Worker threads in the strand pool; 1 is plenty for one node.
  int workers = 1;
  int spin = 64;
};

class DistributedLockSpace {
 public:
  explicit DistributedLockSpace(DistributedLockSpaceConfig config);
  ~DistributedLockSpace();

  DistributedLockSpace(const DistributedLockSpace&) = delete;
  DistributedLockSpace& operator=(const DistributedLockSpace&) = delete;

  // --- Mesh bring-up (in order) ------------------------------------------

  /// Binds this node's loopback listening socket; returns the port.
  std::uint16_t listen();
  /// Dials peer `peer` (its id must be < self()). Call for every lower id.
  void connect(NodeId peer, std::uint16_t port);
  /// Starts the event loop; higher-numbered peers dial us.
  void start();
  /// Blocks until all n-1 peers are connected and identified.
  bool wait_connected(std::chrono::milliseconds timeout);
  /// Orderly departure: GOODBYE to every peer, drain, stop loop and pool.
  /// Idempotent; the destructor calls it.
  ///
  /// Departure is COLLECTIVE: the protocol state machines still route
  /// through every configured node, so a node that leaves while a
  /// sibling still wants locks strands that sibling's requests (GOODBYE
  /// suppresses the crash path by design — it must not poison a whole
  /// run). Quiesce all nodes (e.g. the shared-memory barrier the test
  /// harness uses) before the first shutdown(); live membership change
  /// is the future wire-repair PR.
  void shutdown();

  // --- Introspection ------------------------------------------------------

  NodeId self() const { return config_.self; }
  int nodes() const { return config_.n; }
  int resource_count() const { return directory_.resource_count(); }
  const service::Directory& directory() const { return directory_; }
  ResourceId lookup(std::string_view name) const {
    return directory_.lookup(name);
  }
  const std::string& name(ResourceId r) const { return directory_.name(r); }
  NodeId home_node(ResourceId r) const { return directory_.home_node(r); }

  // --- Client API (this process's node only) ------------------------------

  /// Blocks until this node holds resource `r`'s critical section.
  void lock(ResourceId r);
  /// Bounded-wait lock; kUnavailable once any peer has crashed.
  LockError try_lock_for(ResourceId r, std::chrono::milliseconds timeout);
  void unlock(ResourceId r);

  std::uint64_t entries(ResourceId r) const;
  std::uint64_t total_entries() const;
  const EventLoopStats& transport_stats() const { return loop_->stats(); }

  /// First protocol, exclusivity, or transport error observed, if any.
  std::optional<std::string> first_error() const;

  /// Merged runtime metrics for this process: every telemetry metric plus
  /// the executor counters (exec.*) and the event-loop counters (wire.*)
  /// folded in.
  telemetry::MetricsSnapshot telemetry_snapshot() const;

 private:
  struct ResourceNode;

  /// Per-resource interned metric ids, resolved once at construction.
  struct ResourceTelemetry {
    telemetry::HistogramId wait_ns;
    telemetry::CounterId ok;
    telemetry::CounterId timeouts;
    telemetry::CounterId unavailable;
  };

  ResourceNode& rn(ResourceId r);
  /// Context::send target: frames the message and ships it to `to`.
  void route(ResourceId r, NodeId to, net::MessagePtr message);
  void on_frame(const FrameHeader& header, net::MessagePtr message);
  void on_peer_down(NodeId peer);
  void record_error(const std::string& what);
  /// Records the error and releases every parked client thread.
  void fail(const std::string& what);
  LockError wait_for_grant(ResourceId r,
                           const std::chrono::milliseconds* timeout);

  DistributedLockSpaceConfig config_;
  service::Directory directory_;
  exec::Executor executor_;
  std::unique_ptr<EventLoop> loop_;
  /// This process's state machine per resource, indexed by ResourceId.
  std::vector<std::unique_ptr<ResourceNode>> nodes_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> entries_;
  /// Local-view occupancy witness (complemented by the shared-memory
  /// witness in the multi-process harness).
  std::unique_ptr<std::atomic<int>[]> occupancy_;
  /// A peer crashed: every resource is conservatively unavailable.
  std::atomic<bool> unavailable_{false};
  std::atomic<bool> failed_{false};
  std::atomic<bool> shut_down_{false};

  mutable std::mutex error_mutex_;
  std::optional<std::string> first_error_;

  std::vector<ResourceTelemetry> resource_telemetry_;  // by ResourceId
  telemetry::HistogramId hold_hist_;
  /// Interned kinds of token-carrying messages (one algorithm per space),
  /// for flight-recording token forwards in route().
  std::vector<net::MessageKind> token_kinds_;
};

/// RAII holder mirroring service::ScopedLock.
class DistributedScopedLock {
 public:
  DistributedScopedLock(DistributedLockSpace& space, ResourceId r)
      : space_(&space), resource_(r) {
    space_->lock(resource_);
  }
  ~DistributedScopedLock() {
    if (space_ != nullptr) space_->unlock(resource_);
  }
  DistributedScopedLock(const DistributedScopedLock&) = delete;
  DistributedScopedLock& operator=(const DistributedScopedLock&) = delete;

 private:
  DistributedLockSpace* space_;
  ResourceId resource_;
};

}  // namespace dmx::transport
