#include "transport/distributed_lock_space.hpp"

#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/check.hpp"
#include "exec/strand.hpp"
#include "telemetry/flight_recorder.hpp"

namespace dmx::transport {

/// This process's protocol state machine for one resource, with its
/// strand and the client gate bridging application threads and strand
/// tasks — the single-node cut of ThreadedLockSpace::ResourceNode (no
/// membership/epoch machinery: the wire space has no repair protocol
/// yet, a peer crash makes everything unavailable instead).
struct DistributedLockSpace::ResourceNode {
  ResourceNode(DistributedLockSpace& space, ResourceId resource)
      : space(space), resource(resource), strand(space.executor_),
        context(*this) {}

  class Context final : public proto::Context {
   public:
    explicit Context(ResourceNode& rn) : rn_(rn) {}
    NodeId self() const override { return rn_.space.config_.self; }
    int cluster_size() const override { return rn_.space.config_.n; }
    void send(NodeId to, net::MessagePtr message) override {
      rn_.space.route(rn_.resource, to, std::move(message));
    }
    void grant() override { rn_.on_grant(); }

   private:
    ResourceNode& rn_;
  };

  // --- Strand tasks --------------------------------------------------------

  void deliver(NodeId from, net::MessagePtr message) {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    try {
      node->on_message(context, from, *message);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
  }

  void request() {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    try {
      node->request_cs(context);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
  }

  void release() {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    try {
      node->release_cs(context);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
  }

  void on_grant() {
    bool hand_off = false;
    {
      std::lock_guard<std::mutex> guard(client_mutex);
      if (waiting > 0) {
        granted = true;
        hand_off = true;
      } else {
        // Every waiter timed out; hand the CS straight back so the
        // resource keeps flowing (mirrors the threaded substrate).
        requested = false;
      }
    }
    if (hand_off) {
      client_cv.notify_all();
      return;
    }
    strand.post([this] { release(); });
  }

  DistributedLockSpace& space;
  ResourceId resource;
  exec::Strand strand;
  std::unique_ptr<proto::MutexNode> node;  // strand-confined
  Context context;

  /// Local waiters and grant hand-off; client_mutex guards every field.
  std::mutex client_mutex;
  std::condition_variable client_cv;
  int waiting = 0;
  bool requested = false;
  bool granted = false;
  bool held = false;
  /// telemetry::now_ns() when the current holder entered (0 = not held).
  std::uint64_t hold_started_ns = 0;
};

DistributedLockSpace::DistributedLockSpace(DistributedLockSpaceConfig config)
    : config_(std::move(config)),
      directory_(config_.n, config_.directory_vnodes, config_.seed),
      executor_(exec::ExecutorConfig{config_.workers, config_.spin}) {
  DMX_CHECK(config_.n >= 1);
  DMX_CHECK_MSG(config_.self >= 1 && config_.self <= config_.n,
                "self id " << config_.self << " outside 1.." << config_.n);
  DMX_CHECK_MSG(!config_.resources.empty(),
                "a DistributedLockSpace needs at least one resource");
  if (config_.algorithm.needs_tree && !config_.tree.has_value()) {
    config_.tree = topology::Tree::star(config_.n, 1);
  }

  loop_ = std::make_unique<EventLoop>(
      EventLoopConfig{config_.self},
      [this](const FrameHeader& header, net::MessagePtr message) {
        on_frame(header, std::move(message));
      },
      [this](NodeId peer) { on_peer_down(peer); });

  const int m = static_cast<int>(config_.resources.size());
  entries_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(m));
  occupancy_ =
      std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    entries_[static_cast<std::size_t>(r)].store(0);
    occupancy_[static_cast<std::size_t>(r)].store(0);
  }

  nodes_.reserve(static_cast<std::size_t>(m));
  for (const std::string& name : config_.resources) {
    const ResourceId r = directory_.open(name);
    nodes_.push_back(std::make_unique<ResourceNode>(*this, r));
    proto::ClusterSpec spec;
    spec.n = config_.n;
    spec.initial_token_holder = config_.algorithm.name == "Singhal"
                                    ? 1
                                    : directory_.home_node(r);
    spec.tree = config_.tree.has_value() ? &*config_.tree : nullptr;
    spec.seed = config_.seed;
    // The factory builds all n instances (every process derives the same
    // initial world); this process keeps only its own.
    auto protocol_nodes = config_.algorithm.factory(spec);
    DMX_CHECK(protocol_nodes.size() ==
              static_cast<std::size_t>(config_.n) + 1);
    nodes_.back()->node =
        std::move(protocol_nodes[static_cast<std::size_t>(config_.self)]);
  }

  // Resolve metric ids once, here in cold code (same names as the
  // threaded substrate, so cross-substrate snapshots line up).
  auto& registry = telemetry::Registry::global();
  hold_hist_ = registry.histogram("client.hold_ns");
  resource_telemetry_.reserve(static_cast<std::size_t>(m));
  for (ResourceId r = 0; r < m; ++r) {
    const std::string& rname = directory_.name(r);
    ResourceTelemetry rt;
    rt.wait_ns = registry.histogram("client.wait_ns." + rname);
    rt.ok = registry.counter("client.ok." + rname);
    rt.timeouts = registry.counter("client.timeout." + rname);
    rt.unavailable = registry.counter("client.unavailable." + rname);
    resource_telemetry_.push_back(rt);
  }
  for (const std::string& kind : config_.algorithm.token_message_kinds) {
    token_kinds_.push_back(net::MessageKind::of(kind));
  }
}

DistributedLockSpace::~DistributedLockSpace() { shutdown(); }

std::uint16_t DistributedLockSpace::listen() { return loop_->listen(); }

void DistributedLockSpace::connect(NodeId peer, std::uint16_t port) {
  DMX_CHECK_MSG(peer < config_.self,
                "mesh convention: node " << config_.self
                                         << " only dials lower ids, not "
                                         << peer);
  loop_->connect(peer, port);
}

void DistributedLockSpace::start() { loop_->start(); }

bool DistributedLockSpace::wait_connected(std::chrono::milliseconds timeout) {
  return loop_->wait_for_peers(config_.n - 1, timeout);
}

void DistributedLockSpace::shutdown() {
  if (shut_down_.exchange(true)) return;
  loop_->stop();
  // Stop the pool after the loop: no more frames can arrive, and queued
  // strand tasks are destroyed unrun when the nodes go away.
  executor_.shutdown();
}

DistributedLockSpace::ResourceNode& DistributedLockSpace::rn(ResourceId r) {
  DMX_CHECK(r >= 0 && r < resource_count());
  return *nodes_[static_cast<std::size_t>(r)];
}

void DistributedLockSpace::route(ResourceId r, NodeId to,
                                 net::MessagePtr message) {
  DMX_CHECK(to >= 1 && to <= config_.n && to != config_.self);
  for (const net::MessageKind kind : token_kinds_) {
    if (message->kind_id() == kind) {
      telemetry::FlightRecorder::record(telemetry::FlightEvent::kTokenForward,
                                        r, to, /*arg=*/config_.self);
      break;
    }
  }
  try {
    if (!loop_->send(to, /*epoch=*/0, r, *message)) {
      // Peer gone: the on_peer_down path has (or will) put the space into
      // the unavailable state; dropping the message mirrors the threaded
      // substrate's traffic-to-dead-node drop.
      return;
    }
  } catch (const net::WireError& e) {
    fail(e.what());
  }
}

void DistributedLockSpace::on_frame(const FrameHeader& header,
                                    net::MessagePtr message) {
  if (header.to != config_.self) {
    record_error("frame addressed to node " + std::to_string(header.to) +
                 " arrived at node " + std::to_string(config_.self));
    return;
  }
  if (header.resource < 0 || header.resource >= resource_count()) {
    record_error("frame for unknown resource " +
                 std::to_string(header.resource));
    return;
  }
  if (header.epoch != 0) return;  // fenced: no live epoch but 0 yet
  ResourceNode& x = rn(header.resource);
  const NodeId from = header.from;
  x.strand.post([&x, from, msg = std::move(message)]() mutable {
    x.deliver(from, std::move(msg));
  });
}

void DistributedLockSpace::on_peer_down(NodeId peer) {
  record_error("peer node " + std::to_string(peer) +
               " disconnected without goodbye");
  unavailable_.store(true, std::memory_order_seq_cst);
  for (auto& node : nodes_) {
    { std::lock_guard<std::mutex> guard(node->client_mutex); }
    node->client_cv.notify_all();
  }
}

void DistributedLockSpace::record_error(const std::string& what) {
  std::lock_guard<std::mutex> guard(error_mutex_);
  if (!first_error_.has_value()) first_error_ = what;
}

void DistributedLockSpace::fail(const std::string& what) {
  record_error(what);
  failed_.store(true, std::memory_order_seq_cst);
  for (auto& node : nodes_) {
    { std::lock_guard<std::mutex> guard(node->client_mutex); }
    node->client_cv.notify_all();
  }
}

LockError DistributedLockSpace::wait_for_grant(
    ResourceId r, const std::chrono::milliseconds* timeout) {
  ResourceNode& x = rn(r);
  const ResourceTelemetry& rt =
      resource_telemetry_[static_cast<std::size_t>(r)];
  const std::uint64_t wait_started_ns = telemetry::now_ns();
  telemetry::FlightRecorder::record_at(wait_started_ns,
                                       telemetry::FlightEvent::kRequest, r,
                                       config_.self);
  const auto deadline =
      timeout != nullptr
          ? std::chrono::steady_clock::now() + *timeout
          : std::chrono::steady_clock::time_point::max();
  std::uint64_t grant_ns = 0;
  {
    std::unique_lock<std::mutex> guard(x.client_mutex);
    ++x.waiting;
    if (!x.requested && !x.held) {
      x.requested = true;
      x.strand.post([&x] { x.request(); });
    }
    const auto ready = [this, &x] {
      return x.granted || failed_.load(std::memory_order_relaxed) ||
             unavailable_.load(std::memory_order_relaxed);
    };
    while (true) {
      bool signalled = true;
      if (timeout == nullptr) {
        x.client_cv.wait(guard, ready);
      } else {
        signalled = x.client_cv.wait_until(guard, deadline, ready);
      }
      if (!signalled) {
        // Deadline passed; the request stays posted and a grant arriving
        // with nobody waiting is handed straight back by on_grant.
        --x.waiting;
        telemetry::count(rt.timeouts);
        telemetry::FlightRecorder::record(telemetry::FlightEvent::kTimeout, r,
                                          config_.self);
        return LockError::kTimeout;
      }
      if (x.granted) {
        x.granted = false;
        x.requested = false;
        --x.waiting;
        x.held = true;
        // One clock read serves the hold stamp, the wait histogram, and
        // the grant flight event.
        grant_ns = telemetry::now_ns();
        x.hold_started_ns = grant_ns;
        break;
      }
      --x.waiting;
      if (unavailable_.load(std::memory_order_relaxed)) {
        telemetry::count(rt.unavailable);
        telemetry::FlightRecorder::record(telemetry::FlightEvent::kUnavailable,
                                          r, config_.self);
        return LockError::kUnavailable;
      }
      DMX_CHECK_MSG(false, "distributed lock space failed while waiting on "
                               << name(r) << "; see first_error()");
    }
  }
  // Local-view exclusivity witness (the harness's shared-memory witness
  // covers the cross-process claim).
  const int prev = occupancy_[static_cast<std::size_t>(r)].fetch_add(1);
  if (prev != 0) {
    record_error("local occupancy of resource " + name(r) + " was " +
                 std::to_string(prev) + " on entry");
  }
  entries_[static_cast<std::size_t>(r)].fetch_add(1,
                                                  std::memory_order_relaxed);
  // Per-resource lane only; "client.wait_ns" is rolled up at snapshot
  // time, matching the threaded substrate.
  if (telemetry::sample_1_in_8()) {
    telemetry::observe(rt.wait_ns, grant_ns - wait_started_ns);
  }
  telemetry::count(rt.ok);
  telemetry::FlightRecorder::record_at(grant_ns, telemetry::FlightEvent::kGrant,
                                       r, config_.self);
  return LockError::kOk;
}

void DistributedLockSpace::lock(ResourceId r) {
  const LockError error = wait_for_grant(r, nullptr);
  DMX_CHECK_MSG(error == LockError::kOk,
                "lock of resource " << name(r)
                                    << " can never be granted (peer down)");
}

LockError DistributedLockSpace::try_lock_for(
    ResourceId r, std::chrono::milliseconds timeout) {
  return wait_for_grant(r, &timeout);
}

void DistributedLockSpace::unlock(ResourceId r) {
  ResourceNode& x = rn(r);
  std::uint64_t hold_started_ns = 0;
  {
    std::lock_guard<std::mutex> guard(x.client_mutex);
    DMX_CHECK_MSG(x.held, "unlock of resource " << name(r)
                                                << " which is not held");
    x.held = false;
    hold_started_ns = x.hold_started_ns;
    x.hold_started_ns = 0;
    occupancy_[static_cast<std::size_t>(r)].fetch_sub(1);
    // Strand FIFO orders the release ahead of the follow-up request, and
    // posting under client_mutex keeps a racing lock() on another thread
    // from slipping its request in between.
    x.strand.post([&x] { x.release(); });
    if (x.waiting > 0 && !x.requested) {
      x.requested = true;
      x.strand.post([&x] { x.request(); });
    }
  }
  // Telemetry off the client mutex; one clock read for both consumers.
  const std::uint64_t release_ns = telemetry::now_ns();
  if (hold_started_ns != 0 && telemetry::sample_1_in_8()) {
    telemetry::observe(hold_hist_, release_ns - hold_started_ns);
  }
  telemetry::FlightRecorder::record_at(release_ns,
                                       telemetry::FlightEvent::kRelease, r,
                                       config_.self);
}

std::uint64_t DistributedLockSpace::entries(ResourceId r) const {
  DMX_CHECK(r >= 0 && r < resource_count());
  return entries_[static_cast<std::size_t>(r)].load(
      std::memory_order_relaxed);
}

std::uint64_t DistributedLockSpace::total_entries() const {
  std::uint64_t total = 0;
  for (int r = 0; r < resource_count(); ++r) total += entries(r);
  return total;
}

std::optional<std::string> DistributedLockSpace::first_error() const {
  {
    std::lock_guard<std::mutex> guard(error_mutex_);
    if (first_error_.has_value()) return first_error_;
  }
  return loop_->first_error();
}

telemetry::MetricsSnapshot DistributedLockSpace::telemetry_snapshot() const {
  telemetry::MetricsSnapshot snap = telemetry::Registry::global().snapshot();
  const exec::ExecutorStats stats = executor_.stats();
  snap.set_counter("exec.tasks_executed", stats.tasks_executed);
  snap.set_counter("exec.steals", stats.steals);
  snap.set_counter("exec.parks", stats.parks);
  snap.set_counter("exec.injector_polls", stats.injector_polls);
  const EventLoopStats& wire = loop_->stats();
  snap.set_counter("wire.frames_sent",
                   wire.frames_sent.load(std::memory_order_relaxed));
  snap.set_counter("wire.frames_received",
                   wire.frames_received.load(std::memory_order_relaxed));
  snap.set_counter("wire.bytes_sent",
                   wire.bytes_sent.load(std::memory_order_relaxed));
  snap.set_counter("wire.bytes_received",
                   wire.bytes_received.load(std::memory_order_relaxed));
  snap.set_counter("wire.partial_frames",
                   wire.partial_frames.load(std::memory_order_relaxed));
  snap.set_counter("wire.backpressure_waits",
                   wire.backpressure_waits.load(std::memory_order_relaxed));
  snap.set_counter("wire.outbox_peak_bytes",
                   wire.outbox_peak_bytes.load(std::memory_order_relaxed));
  snap.set_counter("wire.epoll_wakeups",
                   wire.epoll_wakeups.load(std::memory_order_relaxed));
  return snap;
}

}  // namespace dmx::transport
