#include "transport/distributed_lock_space.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

#include "common/check.hpp"
#include "exec/strand.hpp"
#include "quorum/election.hpp"
#include "telemetry/flight_recorder.hpp"
#include "transport/repair_messages.hpp"

namespace dmx::transport {

namespace {

/// Parked protocol frames per resource while an epoch transition is in
/// flight; beyond this the stream is pathological, not merely reordered.
constexpr std::size_t kMaxQueuedFrames = 4096;

}  // namespace

/// This process's protocol state machine for one resource, with its
/// strand and the client gate bridging application threads and strand
/// tasks — the single-node cut of ThreadedLockSpace::ResourceNode,
/// including its crash fencing: every protocol task carries the epoch it
/// was minted in and drops itself when it no longer matches the strand's.
/// A repair installs a fresh compact-world instance via an unfenced reset
/// task; post-repair the instance lives in the survivor world, so the
/// Context speaks ranks to it while the wire keeps original ids.
struct DistributedLockSpace::ResourceNode {
  ResourceNode(DistributedLockSpace& space, ResourceId resource)
      : space(space), resource(resource), strand(space.executor_),
        context(*this) {}

  class Context final : public proto::Context {
   public:
    explicit Context(ResourceNode& rn) : rn_(rn) {}
    NodeId self() const override {
      return rn_.membership != nullptr
                 ? rn_.membership->rank_of(rn_.space.config_.self)
                 : rn_.space.config_.self;
    }
    int cluster_size() const override {
      return rn_.membership != nullptr ? rn_.membership->size()
                                       : rn_.space.config_.n;
    }
    void send(NodeId to, net::MessagePtr message) override {
      const NodeId to_original =
          rn_.membership != nullptr ? rn_.membership->original_of(to) : to;
      rn_.space.route(rn_.resource, to_original, std::move(message),
                      rn_.epoch);
    }
    void grant() override { rn_.on_grant(); }

   private:
    ResourceNode& rn_;
  };

  // --- Strand tasks --------------------------------------------------------

  bool fenced(Epoch tag) const { return tag != epoch; }

  void deliver(Epoch tag, NodeId from, net::MessagePtr message) {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    if (fenced(tag)) return;
    try {
      node->on_message(context,
                       membership != nullptr ? membership->rank_of(from)
                                             : from,
                       *message);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
    publish_remote_pending();
  }

  void request(Epoch tag) {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    if (fenced(tag)) return;
    // A repair's re-issue may have beaten this task into the new world
    // (one outstanding protocol request per node, ever).
    if (request_outstanding) return;
    request_outstanding = true;
    try {
      node->request_cs(context);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
    publish_remote_pending();
  }

  void release(Epoch tag) {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    if (fenced(tag)) return;
    request_outstanding = false;
    try {
      node->release_cs(context);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
    publish_remote_pending();
  }

  /// Post-repair request re-issue: the pre-repair protocol request died
  /// with the old epoch, so if application threads are still parked (or a
  /// request was posted and fenced), ask again in the fresh world —
  /// unless a new-epoch request task already ran here.
  void rerequest(Epoch tag) {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    if (fenced(tag)) return;
    if (request_outstanding) return;
    bool want = false;
    {
      std::lock_guard<std::mutex> guard(client_mutex);
      want = requested || waiting > 0;
      requested = want;
    }
    if (!want) return;
    request_outstanding = true;
    try {
      node->request_cs(context);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
    publish_remote_pending();
  }

  /// Publishes node->has_remote_request() at the end of every strand
  /// task, so a holder's release can consult it without touching
  /// strand-confined state. The value may lag by an in-flight frame —
  /// the lease cap, not this hint, carries the bounded-waiting
  /// guarantee; the hint only decides whether a cap-expired lease may
  /// renew in place.
  void publish_remote_pending() {
    remote_pending.store(node->has_remote_request(),
                         std::memory_order_relaxed);
  }

  void on_grant() {
    bool hand_off = false;
    {
      std::lock_guard<std::mutex> guard(client_mutex);
      if (waiting > 0) {
        granted = true;
        granted_epoch = epoch;
        grant_via_chain = false;
        hand_off = true;
      } else {
        // Every waiter timed out; hand the CS straight back so the
        // resource keeps flowing (mirrors the threaded substrate).
        requested = false;
      }
    }
    if (hand_off) {
      client_cv.notify_all();
      return;
    }
    const Epoch tag = epoch;  // on_grant runs on the strand
    strand.post([this, tag] { release(tag); });
  }

  DistributedLockSpace& space;
  ResourceId resource;
  exec::Strand strand;
  std::unique_ptr<proto::MutexNode> node;  // strand-confined
  /// Reconfiguration epoch this strand's instance belongs to and, post-
  /// repair, the compact membership it speaks. Strand-confined; written
  /// only by reset tasks.
  Epoch epoch = 0;
  std::shared_ptr<const fault::Membership> membership;
  /// Whether this world's instance has an unreleased protocol request in
  /// flight — dedupes the client's posted request against a repair's
  /// re-issue. Strand-confined; cleared by release and by reset.
  bool request_outstanding = false;
  Context context;

  /// Local waiters and grant hand-off; client_mutex guards every field
  /// below except the trailing atomic.
  std::mutex client_mutex;
  std::condition_variable client_cv;
  int waiting = 0;
  bool requested = false;
  bool granted = false;
  /// Arrival-order tickets of the parked waiters: a grant (protocol or
  /// chained) is consumed only by the waiter whose ticket is at the
  /// front, so same-node waiters cannot overtake each other.
  std::deque<std::uint64_t> fifo;
  std::uint64_t ticket_seq = 0;
  /// Consecutive local hand-offs in the current lease window, and
  /// telemetry::now_ns() when the window opened (its first grant).
  int chain_len = 0;
  std::uint64_t chain_started_ns = 0;
  /// Epoch the current holder's grant was minted in; a release chains
  /// only while it still matches the resource's epoch (no repair since).
  Epoch held_epoch = 0;
  /// Whether the pending grant rode the local chain (keeps the lease
  /// window open) or came from the protocol (opens a fresh window).
  bool grant_via_chain = false;
  /// Epoch the pending grant was minted in: the consumer revalidates it
  /// against the resource's current epoch, so a grant from a world a
  /// repair has since fenced is discarded instead of entering the CS
  /// alongside the regenerated token.
  Epoch granted_epoch = 0;
  bool held = false;
  /// telemetry::now_ns() when the current holder entered (0 = not held).
  std::uint64_t hold_started_ns = 0;
  /// has_remote_request() as of this strand's last protocol task (see
  /// publish_remote_pending).
  std::atomic<bool> remote_pending{false};
};

DistributedLockSpace::DistributedLockSpace(DistributedLockSpaceConfig config)
    : config_(std::move(config)),
      directory_(config_.n, config_.directory_vnodes, config_.seed),
      executor_(exec::ExecutorConfig{config_.workers, config_.spin}) {
  DMX_CHECK(config_.n >= 1);
  DMX_CHECK_MSG(config_.self >= 1 && config_.self <= config_.n,
                "self id " << config_.self << " outside 1.." << config_.n);
  DMX_CHECK_MSG(!config_.resources.empty(),
                "a DistributedLockSpace needs at least one resource");
  if (config_.algorithm.needs_tree && !config_.tree.has_value()) {
    config_.tree = topology::Tree::star(config_.n, 1);
  }

  loop_ = std::make_unique<EventLoop>(
      EventLoopConfig{config_.self},
      [this](const FrameHeader& header, net::MessagePtr message) {
        on_frame(header, std::move(message));
      },
      [this](NodeId peer) { on_peer_down(peer); });

  const int m = static_cast<int>(config_.resources.size());
  entries_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(m));
  occupancy_ =
      std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(m));
  resource_epoch_ = std::make_unique<std::atomic<Epoch>[]>(
      static_cast<std::size_t>(m));
  unavailable_ =
      std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    entries_[static_cast<std::size_t>(r)].store(0);
    occupancy_[static_cast<std::size_t>(r)].store(0);
    resource_epoch_[static_cast<std::size_t>(r)].store(0);
    unavailable_[static_cast<std::size_t>(r)].store(false);
  }
  peer_down_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(config_.n) + 1);
  for (NodeId v = 0; v <= config_.n; ++v) {
    peer_down_[static_cast<std::size_t>(v)].store(false);
  }
  repair_.reserve(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    repair_.push_back(std::make_unique<RepairState>());
  }

  nodes_.reserve(static_cast<std::size_t>(m));
  for (const std::string& name : config_.resources) {
    const ResourceId r = directory_.open(name);
    nodes_.push_back(std::make_unique<ResourceNode>(*this, r));
    proto::ClusterSpec spec;
    spec.n = config_.n;
    spec.initial_token_holder = config_.algorithm.name == "Singhal"
                                    ? 1
                                    : directory_.home_node(r);
    spec.tree = config_.tree.has_value() ? &*config_.tree : nullptr;
    spec.seed = config_.seed;
    // The factory builds all n instances (every process derives the same
    // initial world); this process keeps only its own.
    auto protocol_nodes = config_.algorithm.factory(spec);
    DMX_CHECK(protocol_nodes.size() ==
              static_cast<std::size_t>(config_.n) + 1);
    nodes_.back()->node =
        std::move(protocol_nodes[static_cast<std::size_t>(config_.self)]);
  }

  // Resolve metric ids once, here in cold code (same names as the
  // threaded substrate, so cross-substrate snapshots line up).
  auto& registry = telemetry::Registry::global();
  hold_hist_ = registry.histogram("client.hold_ns");
  chain_hist_ = registry.histogram("client.chain_len");
  repair_hist_ = registry.histogram("fault.repair_ns");
  resource_telemetry_.reserve(static_cast<std::size_t>(m));
  for (ResourceId r = 0; r < m; ++r) {
    const std::string& rname = directory_.name(r);
    ResourceTelemetry rt;
    rt.wait_ns = registry.histogram("client.wait_ns." + rname);
    rt.ok = registry.counter("client.ok." + rname);
    rt.timeouts = registry.counter("client.timeout." + rname);
    rt.unavailable = registry.counter("client.unavailable." + rname);
    resource_telemetry_.push_back(rt);
  }
  for (const std::string& kind : config_.algorithm.token_message_kinds) {
    token_kinds_.push_back(net::MessageKind::of(kind));
  }
}

DistributedLockSpace::~DistributedLockSpace() { shutdown(); }

std::uint16_t DistributedLockSpace::listen() { return loop_->listen(); }

void DistributedLockSpace::connect(NodeId peer, std::uint16_t port) {
  DMX_CHECK_MSG(peer < config_.self,
                "mesh convention: node " << config_.self
                                         << " only dials lower ids, not "
                                         << peer);
  loop_->connect(peer, port);
}

void DistributedLockSpace::start() { loop_->start(); }

bool DistributedLockSpace::wait_connected(std::chrono::milliseconds timeout) {
  return loop_->wait_for_peers(config_.n - 1, timeout);
}

void DistributedLockSpace::shutdown() {
  if (shut_down_.exchange(true)) return;
  loop_->stop();
  // Stop the pool after the loop: no more frames can arrive, and queued
  // strand tasks are destroyed unrun when the nodes go away.
  executor_.shutdown();
}

DistributedLockSpace::ResourceNode& DistributedLockSpace::rn(ResourceId r) {
  DMX_CHECK(r >= 0 && r < resource_count());
  return *nodes_[static_cast<std::size_t>(r)];
}

DistributedLockSpace::RepairState& DistributedLockSpace::repair(ResourceId r) {
  DMX_CHECK(r >= 0 && r < resource_count());
  return *repair_[static_cast<std::size_t>(r)];
}

Epoch DistributedLockSpace::epoch(ResourceId r) const {
  DMX_CHECK(r >= 0 && r < resource_count());
  return resource_epoch_[static_cast<std::size_t>(r)].load(
      std::memory_order_acquire);
}

void DistributedLockSpace::route(ResourceId r, NodeId to,
                                 net::MessagePtr message, Epoch tag) {
  DMX_CHECK(to >= 1 && to <= config_.n && to != config_.self);
  for (const net::MessageKind kind : token_kinds_) {
    if (message->kind_id() == kind) {
      telemetry::FlightRecorder::record(telemetry::FlightEvent::kTokenForward,
                                        r, to, /*arg=*/config_.self);
      break;
    }
  }
  // The wire analogue of the threaded substrate's traffic-to-dead-node
  // drop; repair re-requests cover anything lost here.
  if (peer_down_[static_cast<std::size_t>(to)].load(
          std::memory_order_relaxed)) {
    return;
  }
  try {
    if (!loop_->send(to, tag, r, *message)) {
      // Peer vanished between the liveness check and the send; the
      // on_peer_down path handles it.
      return;
    }
  } catch (const net::WireError& e) {
    fail(e.what());
  }
}

void DistributedLockSpace::on_frame(const FrameHeader& header,
                                    net::MessagePtr message) {
  if (header.to != config_.self) {
    record_error("frame addressed to node " + std::to_string(header.to) +
                 " arrived at node " + std::to_string(config_.self));
    return;
  }
  if (header.resource < 0 || header.resource >= resource_count()) {
    record_error("frame for unknown resource " +
                 std::to_string(header.resource));
    return;
  }
  // Repair control frames are ABOUT the epoch transition, so they bypass
  // the epoch fence that governs protocol traffic.
  if (message->kind_id() == RepairMessage::interned_kind()) {
    handle_repair(header, static_cast<const RepairMessage&>(*message));
    return;
  }
  if (message->kind_id() == RepairAckMessage::interned_kind()) {
    handle_repair_ack(header,
                      static_cast<const RepairAckMessage&>(*message));
    return;
  }

  RepairState& rs = repair(header.resource);
  std::lock_guard<std::mutex> guard(rs.mutex);
  if (header.epoch < rs.target) {
    // Old-world traffic after the fence went up: the sender had not yet
    // processed the repair announcement. Dropping it here is the wire
    // equivalent of the threaded substrate's fenced strand tasks.
    stale_frames_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (header.epoch > rs.installed) {
    // The frame is from a world we have not installed yet (its REPAIR is
    // still in flight, or the install awaits acks); park it and drain it
    // behind the reset task once the matching world lands.
    if (rs.queued.size() >= kMaxQueuedFrames) {
      record_error("repair frame queue overflow on resource " +
                   std::to_string(header.resource));
      return;
    }
    rs.queued.push_back(
        QueuedFrame{header.epoch, header.from, std::move(message)});
    return;
  }
  ResourceNode& x = rn(header.resource);
  const Epoch tag = header.epoch;
  const NodeId from = header.from;
  x.strand.post([&x, tag, from, msg = std::move(message)]() mutable {
    x.deliver(tag, from, std::move(msg));
  });
}

void DistributedLockSpace::on_peer_down(NodeId peer) {
  if (peer < 1 || peer > config_.n) return;
  // Dedupe: a REPAIR announcement may have marked the peer down before
  // its EOF reached us, and teardown fires once per socket anyway.
  if (peer_down_[static_cast<std::size_t>(peer)].exchange(
          true, std::memory_order_seq_cst)) {
    return;
  }
  telemetry::FlightRecorder::record(telemetry::FlightEvent::kCrash,
                                    /*resource=*/0, peer);
  if (!config_.recovery_enabled) {
    record_error("peer node " + std::to_string(peer) +
                 " disconnected without goodbye");
    for (int r = 0; r < resource_count(); ++r) {
      mark_unavailable(r);
      wake_clients(r);
    }
    return;
  }

  std::vector<std::uint8_t> up(static_cast<std::size_t>(config_.n) + 1, 0);
  for (NodeId v = 1; v <= config_.n; ++v) {
    up[static_cast<std::size_t>(v)] =
        peer_down_[static_cast<std::size_t>(v)].load(
            std::memory_order_seq_cst)
            ? 0
            : 1;
  }
  const NodeId winner = quorum::elect_regenerator(config_.n, up);
  if (winner == kNilNode) {
    // No live strict majority: the space stays degraded forever (crashed
    // processes never rejoin the mesh). Waiters are told, not left
    // hanging.
    record_error("no live majority after node " + std::to_string(peer) +
                 " crashed");
    for (int r = 0; r < resource_count(); ++r) {
      mark_unavailable(r);
      wake_clients(r);
    }
    return;
  }
  if (winner != config_.self) {
    // The winner's own event loop observed the same EOF and announces
    // REPAIR to us; if the winner itself is the next to die, its EOF
    // re-runs this election at every survivor.
    return;
  }
  for (int r = 0; r < resource_count(); ++r) {
    RepairState& rs = repair(r);
    std::lock_guard<std::mutex> guard(rs.mutex);
    start_repair_locked(r, rs, rs.target);
  }
}

void DistributedLockSpace::start_repair_locked(ResourceId r, RepairState& rs,
                                               Epoch at_least) {
  std::vector<std::uint8_t> up(static_cast<std::size_t>(config_.n) + 1, 0);
  for (NodeId v = 1; v <= config_.n; ++v) {
    up[static_cast<std::size_t>(v)] =
        peer_down_[static_cast<std::size_t>(v)].load(
            std::memory_order_seq_cst)
            ? 0
            : 1;
  }
  const NodeId winner = quorum::elect_regenerator(config_.n, up);
  if (winner == kNilNode) {
    mark_unavailable(r);
    wake_clients(r);
    return;
  }
  if (winner != config_.self) return;

  // Ballot-style epoch: round * n + winner id. Distinct winners can never
  // mint the same epoch, so two repairs racing after a mid-repair winner
  // death cannot fence different worlds at the same number (survivors of
  // one would silently satisfy the ack count of the other).
  const Epoch base = std::max(rs.target, at_least);
  const Epoch n = static_cast<Epoch>(config_.n);
  const Epoch e = (base / n + 1) * n + static_cast<Epoch>(config_.self);
  rs.target = e;
  rs.winner = winner;
  rs.membership = std::make_shared<const fault::Membership>(
      fault::Membership::survivors(config_.n, up));
  rs.acks.assign(static_cast<std::size_t>(config_.n) + 1, 0);
  rs.acks[static_cast<std::size_t>(config_.self)] = 1;
  rs.acks_missing = rs.membership->size() - 1;
  // Fence first: from here on no grant minted in the old world can be
  // consumed (wait_for_grant revalidates granted_epoch against this), and
  // every old-tagged strand task drops itself.
  resource_epoch_[static_cast<std::size_t>(r)].store(
      e, std::memory_order_seq_cst);
  if (rs.repair_started_ns == 0) {
    rs.repair_started_ns = telemetry::now_ns();
    telemetry::FlightRecorder::record(telemetry::FlightEvent::kRepairStart,
                                      r);
  }

  std::vector<NodeId> members;
  members.reserve(static_cast<std::size_t>(rs.membership->size()));
  for (NodeId rank = 1; rank <= rs.membership->size(); ++rank) {
    members.push_back(rs.membership->original_of(rank));
  }
  const RepairMessage announce(e, winner, std::move(members));
  for (NodeId rank = 1; rank <= rs.membership->size(); ++rank) {
    const NodeId v = rs.membership->original_of(rank);
    if (v == config_.self) continue;
    // Non-blocking: this runs on the loop thread (or under rs.mutex,
    // which the loop thread takes), and only the loop drains outboxes.
    loop_->send(v, e, r, announce, /*block_on_backpressure=*/false);
  }
  wake_clients(r);
  try_install_locked(r, rs);
}

void DistributedLockSpace::handle_repair(const FrameHeader& header,
                                         const RepairMessage& message) {
  const ResourceId r = header.resource;
  RepairState& rs = repair(r);
  std::lock_guard<std::mutex> guard(rs.mutex);
  if (message.epoch() <= rs.target) {
    // Already fenced at (or past) this epoch. Ack with OUR target: equal
    // means a plain re-ack; above tells the lagging winner to re-announce
    // past a dead predecessor's higher fence.
    loop_->send(header.from, rs.target, r, RepairAckMessage(rs.target),
                /*block_on_backpressure=*/false);
    return;
  }
  std::vector<std::uint8_t> up(static_cast<std::size_t>(config_.n) + 1, 0);
  bool self_in = false;
  for (const NodeId v : message.members()) {
    if (v < 1 || v > config_.n) {
      record_error("repair membership contains node " + std::to_string(v) +
                   " outside 1.." + std::to_string(config_.n));
      return;
    }
    up[static_cast<std::size_t>(v)] = 1;
    self_in = self_in || v == config_.self;
  }
  if (!self_in || !up[static_cast<std::size_t>(message.winner())]) {
    record_error("repair membership from node " +
                 std::to_string(header.from) +
                 " excludes a live participant");
    return;
  }
  rs.target = message.epoch();
  rs.winner = message.winner();
  rs.membership = std::make_shared<const fault::Membership>(
      fault::Membership::survivors(config_.n, up));
  // The announcement is also a liveness report: nodes outside the
  // survivor set are dead even if their EOF has not reached us yet
  // (store, not exchange — the winner already ran the election).
  for (NodeId v = 1; v <= config_.n; ++v) {
    if (v != config_.self && !up[static_cast<std::size_t>(v)]) {
      peer_down_[static_cast<std::size_t>(v)].store(
          true, std::memory_order_seq_cst);
    }
  }
  resource_epoch_[static_cast<std::size_t>(r)].store(
      rs.target, std::memory_order_seq_cst);
  if (rs.repair_started_ns == 0) {
    rs.repair_started_ns = telemetry::now_ns();
    telemetry::FlightRecorder::record(telemetry::FlightEvent::kRepairStart,
                                      r);
  }

  ResourceNode& x = rn(r);
  bool held = false;
  {
    std::lock_guard<std::mutex> client_guard(x.client_mutex);
    held = x.held;
  }
  if (held) {
    // The old-world critical section finishes undisturbed; unlock installs
    // the fresh world and acks then. The fence above already guarantees no
    // SECOND old-world entry can happen meanwhile.
    rs.await_unlock = true;
  } else {
    install_world_locked(r, rs);
    loop_->send(header.from, rs.installed, r, RepairAckMessage(rs.installed),
                /*block_on_backpressure=*/false);
  }
  wake_clients(r);
}

void DistributedLockSpace::handle_repair_ack(const FrameHeader& header,
                                             const RepairAckMessage& message) {
  const ResourceId r = header.resource;
  RepairState& rs = repair(r);
  std::lock_guard<std::mutex> guard(rs.mutex);
  if (rs.winner != config_.self) return;
  if (message.epoch() > rs.target) {
    // The acker is fenced past us: a predecessor winner announced a
    // higher epoch before dying. Re-announce above it so every survivor
    // converges on one world.
    start_repair_locked(r, rs, message.epoch());
    return;
  }
  if (message.epoch() < rs.target) return;  // ack for a superseded epoch
  const NodeId from = header.from;
  if (from < 1 || from > config_.n ||
      rs.acks[static_cast<std::size_t>(from)] != 0) {
    return;
  }
  rs.acks[static_cast<std::size_t>(from)] = 1;
  --rs.acks_missing;
  try_install_locked(r, rs);
}

void DistributedLockSpace::try_install_locked(ResourceId r, RepairState& rs) {
  if (rs.installed == rs.target) return;
  if (rs.winner != config_.self) return;
  if (rs.acks_missing > 0) return;
  ResourceNode& x = rn(r);
  {
    std::lock_guard<std::mutex> client_guard(x.client_mutex);
    if (x.held) {
      rs.await_unlock = true;
      return;
    }
  }
  // Every survivor is fenced and nobody is inside the old critical
  // section anywhere: installing re-mints the token. The hook lets the
  // embedder retire state the dead holder abandoned (the test harness
  // clears its shared-memory occupancy here).
  if (config_.on_repair) config_.on_repair(rs.target, *rs.membership);
  install_world_locked(r, rs);
}

void DistributedLockSpace::install_world_locked(ResourceId r,
                                                RepairState& rs) {
  const Epoch e = rs.target;
  proto::ClusterSpec spec;
  spec.n = rs.membership->size();
  spec.initial_token_holder = rs.membership->rank_of(rs.winner);
  spec.seed = config_.seed;
  spec.epoch = e;
  if (config_.algorithm.needs_tree) {
    // Star over the survivors rooted at the winner: diameter 2 from any
    // survivor to the regenerated token, independent of who died.
    rs.trees.push_back(std::make_unique<topology::Tree>(
        topology::Tree::star(spec.n, spec.initial_token_holder)));
    spec.tree = rs.trees.back().get();
  }
  auto fresh = config_.algorithm.factory(spec);
  DMX_CHECK(fresh.size() == static_cast<std::size_t>(spec.n) + 1);
  const NodeId my_rank = rs.membership->rank_of(config_.self);
  std::shared_ptr<const fault::Membership> shared = rs.membership;
  ResourceNode& x = rn(r);
  // The reset task is unfenced — it IS the epoch transition on this
  // strand; every later same-strand task observes the fresh world.
  x.strand.post([&x, e, shared,
                 fresh_node = std::move(
                     fresh[static_cast<std::size_t>(my_rank)])]() mutable {
    x.node = std::move(fresh_node);
    x.epoch = e;
    x.membership = shared;
    x.request_outstanding = false;
    x.publish_remote_pending();
  });
  // Re-issue behind the reset for parked waiters; any message it triggers
  // lands behind the destination's own reset or in its parked queue.
  x.strand.post([&x, e] { x.rerequest(e); });
  // Frames from world e that arrived before it was installed drain now,
  // behind the reset in strand FIFO; anything older is stale, anything
  // newer keeps waiting for its own install.
  std::size_t kept = 0;
  for (QueuedFrame& qf : rs.queued) {
    if (qf.epoch == e) {
      const NodeId from = qf.from;
      x.strand.post([&x, e, from, msg = std::move(qf.message)]() mutable {
        x.deliver(e, from, std::move(msg));
      });
    } else if (qf.epoch > e) {
      rs.queued[kept++] = std::move(qf);
    } else {
      stale_frames_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  rs.queued.resize(kept);
  rs.installed = e;
  rs.await_unlock = false;
  if (rs.repair_started_ns != 0) {
    telemetry::observe(repair_hist_,
                       telemetry::now_ns() - rs.repair_started_ns);
    rs.repair_started_ns = 0;
  }
  telemetry::FlightRecorder::record(telemetry::FlightEvent::kRepairDone, r,
                                    rs.winner, static_cast<std::int64_t>(e));
  wake_clients(r);
}

void DistributedLockSpace::mark_unavailable(ResourceId r) {
  if (!unavailable_[static_cast<std::size_t>(r)].exchange(
          true, std::memory_order_seq_cst)) {
    telemetry::FlightRecorder::record(
        telemetry::FlightEvent::kResourceUnavailable, r);
  }
}

void DistributedLockSpace::wake_clients(ResourceId r) {
  ResourceNode& x = rn(r);
  // Lock/unlock pairs with each waiter's predicate check so the wake
  // cannot slip between its check and its wait.
  { std::lock_guard<std::mutex> guard(x.client_mutex); }
  x.client_cv.notify_all();
}

void DistributedLockSpace::debug_fence_epoch(ResourceId r) {
  RepairState& rs = repair(r);
  std::lock_guard<std::mutex> guard(rs.mutex);
  rs.target += 1;
  resource_epoch_[static_cast<std::size_t>(r)].store(
      rs.target, std::memory_order_seq_cst);
  wake_clients(r);
}

void DistributedLockSpace::record_error(const std::string& what) {
  std::lock_guard<std::mutex> guard(error_mutex_);
  if (!first_error_.has_value()) first_error_ = what;
}

void DistributedLockSpace::fail(const std::string& what) {
  record_error(what);
  failed_.store(true, std::memory_order_seq_cst);
  for (auto& node : nodes_) {
    { std::lock_guard<std::mutex> guard(node->client_mutex); }
    node->client_cv.notify_all();
  }
}

LockError DistributedLockSpace::wait_for_grant(
    ResourceId r, const std::chrono::milliseconds* timeout) {
  ResourceNode& x = rn(r);
  const ResourceTelemetry& rt =
      resource_telemetry_[static_cast<std::size_t>(r)];
  const std::uint64_t wait_started_ns = telemetry::now_ns();
  telemetry::FlightRecorder::record_at(wait_started_ns,
                                       telemetry::FlightEvent::kRequest, r,
                                       config_.self);
  const auto deadline =
      timeout != nullptr
          ? std::chrono::steady_clock::now() + *timeout
          : std::chrono::steady_clock::time_point::max();
  std::uint64_t grant_ns = 0;
  {
    std::unique_lock<std::mutex> guard(x.client_mutex);
    ++x.waiting;
    // Arrival-order ticket: grants are consumed strictly in ticket order,
    // so a later waiter on this node can never overtake an earlier one
    // through a lucky condvar wake.
    const std::uint64_t ticket = x.ticket_seq++;
    x.fifo.push_back(ticket);
    if (!x.requested && !x.held) {
      x.requested = true;
      const Epoch tag = resource_epoch_[static_cast<std::size_t>(r)].load(
          std::memory_order_acquire);
      x.strand.post([&x, tag] { x.request(tag); });
    }
    const auto ready = [this, r, &x, ticket] {
      return (x.granted && x.fifo.front() == ticket) ||
             failed_.load(std::memory_order_relaxed) ||
             unavailable_[static_cast<std::size_t>(r)].load(
                 std::memory_order_relaxed);
    };
    while (true) {
      bool signalled = true;
      if (timeout == nullptr) {
        x.client_cv.wait(guard, ready);
      } else {
        signalled = x.client_cv.wait_until(guard, deadline, ready);
      }
      if (!signalled) {
        // Deadline passed; the request stays posted and a grant arriving
        // with nobody waiting is handed straight back by on_grant. A
        // repair wakeup never extends the deadline: the wait_until above
        // re-arms against the ORIGINAL deadline after every spurious or
        // stale-grant wake.
        --x.waiting;
        x.fifo.erase(std::find(x.fifo.begin(), x.fifo.end(), ticket));
        guard.unlock();
        // The waiter behind us is the new front; a pending grant it was
        // fenced off may now be its to consume.
        x.client_cv.notify_all();
        telemetry::count(rt.timeouts);
        telemetry::FlightRecorder::record(telemetry::FlightEvent::kTimeout, r,
                                          config_.self);
        return LockError::kTimeout;
      }
      if (x.granted && x.fifo.front() == ticket) {
        // Revalidate against the current epoch: a repair may have fenced
        // the world this grant came from, in which case the regenerated
        // token supersedes it and entering would break exclusion. The
        // repair's re-request covers us; keep waiting.
        if (x.granted_epoch !=
            resource_epoch_[static_cast<std::size_t>(r)].load(
                std::memory_order_acquire)) {
          x.granted = false;
          continue;
        }
        x.granted = false;
        x.requested = false;
        --x.waiting;
        x.fifo.pop_front();
        x.held = true;
        x.held_epoch = x.granted_epoch;
        // One clock read serves the hold stamp, the wait histogram, and
        // the grant flight event.
        grant_ns = telemetry::now_ns();
        x.hold_started_ns = grant_ns;
        if (x.grant_via_chain) {
          x.grant_via_chain = false;  // window stays open, length counted
        } else {
          x.chain_len = 0;  // fresh protocol grant opens a fresh window
          x.chain_started_ns = grant_ns;
        }
        break;
      }
      if (unavailable_[static_cast<std::size_t>(r)].load(
              std::memory_order_relaxed)) {
        --x.waiting;
        x.fifo.erase(std::find(x.fifo.begin(), x.fifo.end(), ticket));
        telemetry::count(rt.unavailable);
        telemetry::FlightRecorder::record(telemetry::FlightEvent::kUnavailable,
                                          r, config_.self);
        return LockError::kUnavailable;
      }
      if (failed_.load(std::memory_order_relaxed)) {
        --x.waiting;
        x.fifo.erase(std::find(x.fifo.begin(), x.fifo.end(), ticket));
        DMX_CHECK_MSG(false, "distributed lock space failed while waiting on "
                                 << name(r) << "; see first_error()");
      }
      // Spurious wake (repair installed a fresh world, say): keep waiting
      // against the original deadline.
    }
  }
  // Local-view exclusivity witness (the harness's shared-memory witness
  // covers the cross-process claim).
  const int prev = occupancy_[static_cast<std::size_t>(r)].fetch_add(1);
  if (prev != 0) {
    record_error("local occupancy of resource " + name(r) + " was " +
                 std::to_string(prev) + " on entry");
  }
  entries_[static_cast<std::size_t>(r)].fetch_add(1,
                                                  std::memory_order_relaxed);
  // Per-resource lane only; "client.wait_ns" is rolled up at snapshot
  // time, matching the threaded substrate.
  if (telemetry::sample_1_in_8()) {
    telemetry::observe(rt.wait_ns, grant_ns - wait_started_ns);
  }
  telemetry::count(rt.ok);
  telemetry::FlightRecorder::record_at(grant_ns, telemetry::FlightEvent::kGrant,
                                       r, config_.self);
  return LockError::kOk;
}

void DistributedLockSpace::lock(ResourceId r) {
  const LockError error = wait_for_grant(r, nullptr);
  DMX_CHECK_MSG(error == LockError::kOk,
                "lock of resource "
                    << name(r)
                    << " can never be granted (no live majority)");
}

LockError DistributedLockSpace::try_lock_for(
    ResourceId r, std::chrono::milliseconds timeout) {
  return wait_for_grant(r, &timeout);
}

void DistributedLockSpace::unlock(ResourceId r) {
  ResourceNode& x = rn(r);
  // One clock read ahead of the mutex serves the lease-window check, the
  // hold histogram, and the release/chain flight event.
  const std::uint64_t release_ns = telemetry::now_ns();
  std::uint64_t hold_started_ns = 0;
  bool chained = false;
  int chain_arg = 0;
  int ended_chain = 0;  // lease window closed at this length (0 = none)
  bool yielded_with_waiters = false;
  {
    std::lock_guard<std::mutex> guard(x.client_mutex);
    DMX_CHECK_MSG(x.held, "unlock of resource " << name(r)
                                                << " which is not held");
    x.held = false;
    hold_started_ns = x.hold_started_ns;
    x.hold_started_ns = 0;
    occupancy_[static_cast<std::size_t>(r)].fetch_sub(1);
    // The tag is re-read here: if a repair fenced us while we held, the
    // release is minted in the NEW epoch and drops itself (the old world
    // is being discarded whole).
    const Epoch tag = resource_epoch_[static_cast<std::size_t>(r)].load(
        std::memory_order_acquire);
    // Local grant chaining: with waiters parked on this node and the
    // lease not exhausted, hand the CS straight to the next one — one
    // condvar wake, zero wire frames. Never across an epoch transition:
    // a repair fences (bumps the epoch) BEFORE it checks for a local
    // holder, so tag != held_epoch exactly when an install is waiting on
    // this unlock, and the normal path below completes it.
    if (x.waiting > 0 && tag == x.held_epoch &&
        !failed_.load(std::memory_order_relaxed) &&
        !unavailable_[static_cast<std::size_t>(r)].load(
            std::memory_order_relaxed)) {
      int chain = x.chain_len;
      const bool window_ok =
          config_.lease.max_hold_ns == 0 ||
          release_ns - x.chain_started_ns < config_.lease.max_hold_ns;
      bool hand_off =
          window_ok && service::lease_chain_allowed(config_.lease, chain);
      if (!hand_off && config_.lease.max_chain != 0 &&
          service::lease_renewable(
              config_.lease, config_.algorithm.holder_sees_remote_requests,
              x.remote_pending.load(std::memory_order_relaxed))) {
        // Lease expired but the protocol instance can see that no remote
        // request is pending: renew in place instead of a pointless
        // release/re-request wire round.
        ended_chain = chain;
        chain = 0;
        x.chain_started_ns = release_ns;
        hand_off = true;
      }
      if (hand_off) {
        x.chain_len = chain + 1;
        chain_arg = x.chain_len;
        x.granted = true;
        x.granted_epoch = x.held_epoch;
        x.grant_via_chain = true;
        chained = true;
      }
    }
    if (!chained) {
      ended_chain = x.chain_len;
      x.chain_len = 0;
      yielded_with_waiters = x.waiting > 0;
      // Strand FIFO orders the release ahead of the follow-up request,
      // and posting under client_mutex keeps a racing lock() on another
      // thread from slipping its request in between.
      x.strand.post([&x, tag] { x.release(tag); });
      if (x.waiting > 0 && !x.requested) {
        x.requested = true;
        x.strand.post([&x, tag] { x.request(tag); });
      }
    }
  }
  // Telemetry off the client mutex.
  if (hold_started_ns != 0 && telemetry::sample_1_in_8()) {
    telemetry::observe(hold_hist_, release_ns - hold_started_ns);
  }
  if (ended_chain > 0) {
    telemetry::observe(chain_hist_,
                       static_cast<std::uint64_t>(ended_chain));
  }
  if (chained) {
    x.client_cv.notify_all();
    chained_grants_.fetch_add(1, std::memory_order_relaxed);
    telemetry::FlightRecorder::record_at(release_ns,
                                         telemetry::FlightEvent::kChainGrant,
                                         r, config_.self, chain_arg);
    // No deferred install can be waiting on this unlock: a repair fences
    // the epoch before deferring, which disables chaining above.
    return;
  }
  telemetry::FlightRecorder::record_at(release_ns,
                                       telemetry::FlightEvent::kRelease, r,
                                       config_.self);
  if (yielded_with_waiters) {
    lease_yields_.fetch_add(1, std::memory_order_relaxed);
    telemetry::FlightRecorder::record_at(release_ns,
                                         telemetry::FlightEvent::kLeaseYield,
                                         r, config_.self, ended_chain);
  }
  // Complete a repair that deferred while this client held the lock.
  // Taken without client_mutex: the repair path acquires client_mutex
  // under rs.mutex, never the reverse.
  RepairState& rs = repair(r);
  std::lock_guard<std::mutex> repair_guard(rs.mutex);
  if (!rs.await_unlock) return;
  rs.await_unlock = false;
  if (rs.winner == config_.self) {
    try_install_locked(r, rs);
  } else if (rs.installed < rs.target) {
    const NodeId winner = rs.winner;
    install_world_locked(r, rs);
    // Non-blocking even off the loop thread: rs.mutex is held, and the
    // loop thread takes it in on_frame — waiting for the loop to drain an
    // outbox here could deadlock.
    loop_->send(winner, rs.installed, r, RepairAckMessage(rs.installed),
                /*block_on_backpressure=*/false);
  }
}

std::uint64_t DistributedLockSpace::entries(ResourceId r) const {
  DMX_CHECK(r >= 0 && r < resource_count());
  return entries_[static_cast<std::size_t>(r)].load(
      std::memory_order_relaxed);
}

std::uint64_t DistributedLockSpace::total_entries() const {
  std::uint64_t total = 0;
  for (int r = 0; r < resource_count(); ++r) total += entries(r);
  return total;
}

std::optional<std::string> DistributedLockSpace::first_error() const {
  {
    std::lock_guard<std::mutex> guard(error_mutex_);
    if (first_error_.has_value()) return first_error_;
  }
  return loop_->first_error();
}

telemetry::MetricsSnapshot DistributedLockSpace::telemetry_snapshot() const {
  telemetry::MetricsSnapshot snap = telemetry::Registry::global().snapshot();
  const exec::ExecutorStats stats = executor_.stats();
  snap.set_counter("exec.tasks_executed", stats.tasks_executed);
  snap.set_counter("exec.steals", stats.steals);
  snap.set_counter("exec.parks", stats.parks);
  snap.set_counter("exec.injector_polls", stats.injector_polls);
  const EventLoopStats& wire = loop_->stats();
  snap.set_counter("wire.frames_sent",
                   wire.frames_sent.load(std::memory_order_relaxed));
  snap.set_counter("wire.frames_received",
                   wire.frames_received.load(std::memory_order_relaxed));
  snap.set_counter("wire.bytes_sent",
                   wire.bytes_sent.load(std::memory_order_relaxed));
  snap.set_counter("wire.bytes_received",
                   wire.bytes_received.load(std::memory_order_relaxed));
  snap.set_counter("wire.partial_frames",
                   wire.partial_frames.load(std::memory_order_relaxed));
  snap.set_counter("wire.backpressure_waits",
                   wire.backpressure_waits.load(std::memory_order_relaxed));
  snap.set_counter("wire.outbox_peak_bytes",
                   wire.outbox_peak_bytes.load(std::memory_order_relaxed));
  snap.set_counter("wire.epoll_wakeups",
                   wire.epoll_wakeups.load(std::memory_order_relaxed));
  snap.set_counter("wire.stale_epoch_frames",
                   stale_frames_.load(std::memory_order_relaxed));
  snap.set_counter("client.chained_grants", chained_grants());
  snap.set_counter("client.lease_yields", lease_yields());
  return snap;
}

}  // namespace dmx::transport
